// A small direct-mapped TLB. Flushed on CR3 load, exactly like the hardware
// the paper describes ("automatically flushed on task switch").
//
// Entries are validated against a flush generation instead of a per-entry
// valid bit, so Flush() is O(1): it bumps the generation and every stale
// entry misses on its next lookup. A separate change counter ticks on every
// Flush *and* FlushPage; the CPU's one-entry fetch TLB revalidates against
// it, which makes all the kernel's invalidation hooks (CR3 switch, PTE edit,
// INVLPG analogue) propagate to the instruction fast path for free.
#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <array>
#include <atomic>

#include "src/hw/types.h"

namespace palladium {

class Tlb {
 public:
  static constexpr u32 kEntries = 64;
  // Insert's "nothing evicted" sentinel (no valid vpn is ~0: that linear
  // range would sit beyond the 32-bit address space).
  static constexpr u32 kNoVpn = ~0u;

  struct Entry {
    u64 gen = 0;    // valid iff gen == current flush generation (gen 0 = never)
    u32 vpn = 0;    // virtual page number
    u32 frame = 0;  // physical frame base
    u32 flags = 0;  // effective PTE flags
  };

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 flushes = 0;
  };

  bool Lookup(u32 linear, u32* frame, u32* flags) {
    const u32 vpn = PageNumber(linear);
    Entry& e = entries_[vpn % kEntries];
    if (e.gen == gen_ && e.vpn == vpn) {
      ++stats_.hits;
      *frame = e.frame;
      *flags = e.flags;
      return true;
    }
    ++stats_.misses;
    return false;
  }

  // Returns the vpn of a *live* entry this insert displaced (kNoVpn
  // otherwise), so caches validated against TLB residency — the CPU's D-TLB —
  // can drop the victim and keep "D-TLB hit implies TLB hit" exact.
  u32 Insert(u32 linear, u32 frame, u32 flags) {
    const u32 vpn = PageNumber(linear);
    Entry& e = entries_[vpn % kEntries];
    const u32 evicted = (e.gen == gen_ && e.vpn != vpn) ? e.vpn : kNoVpn;
    e = Entry{gen_, vpn, frame, flags};
    return evicted;
  }

  // Sets extra flag bits on a live entry (the MMU's dirty-bit bookkeeping:
  // the first TLB-hit write marks the cached translation known-dirty).
  void OrFlags(u32 linear, u32 bits) {
    const u32 vpn = PageNumber(linear);
    Entry& e = entries_[vpn % kEntries];
    if (e.gen == gen_ && e.vpn == vpn) e.flags |= bits;
  }

  // Stat credit for lookups the D-TLB fast path answered. A D-TLB hit is by
  // construction a set of would-be TLB hits (one per byte of the access), so
  // hit-rate consumers keep seeing the same numbers with the fast path on.
  void RecordFastPathHits(u64 n) { stats_.hits += n; }

  // O(1): stale entries are recognised by their generation tag.
  void Flush() {
    ++gen_;
    change_count_.fetch_add(1, std::memory_order_release);
    ++stats_.flushes;
  }

  // INVLPG analogue, used by the kernel model after PTE edits.
  void FlushPage(u32 linear) {
    const u32 vpn = PageNumber(linear);
    Entry& e = entries_[vpn % kEntries];
    if (e.gen == gen_ && e.vpn == vpn) e.gen = 0;
    change_count_.fetch_add(1, std::memory_order_release);
  }

  // Monotonic counter covering every invalidation event (full flushes and
  // single-page flushes alike). Consumers caching translations outside the
  // TLB compare it to detect that their copy may be stale. Atomic for the
  // threaded SMP mode: entries themselves are only mutated by the owning
  // vCPU's thread or inside the quiesced barrier window (staged shootdown
  // delivery), but sibling threads may poll the counter to observe that a
  // flush was applied. Release on the bump pairs with acquire here, so a
  // reader that sees the new count also sees the flushed entry state.
  u64 change_count() const { return change_count_.load(std::memory_order_acquire); }

  const Stats& stats() const { return stats_; }

 private:
  std::array<Entry, kEntries> entries_{};
  u64 gen_ = 1;  // starts above the entries' default tag of 0
  std::atomic<u64> change_count_{0};
  Stats stats_;
};

}  // namespace palladium

#endif  // SRC_HW_TLB_H_
