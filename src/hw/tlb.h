// A small direct-mapped TLB. Flushed on CR3 load, exactly like the hardware
// the paper describes ("automatically flushed on task switch").
#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <array>

#include "src/hw/types.h"

namespace palladium {

class Tlb {
 public:
  static constexpr u32 kEntries = 64;

  struct Entry {
    bool valid = false;
    u32 vpn = 0;    // virtual page number
    u32 frame = 0;  // physical frame base
    u32 flags = 0;  // effective PTE flags
  };

  struct Stats {
    u64 hits = 0;
    u64 misses = 0;
    u64 flushes = 0;
  };

  bool Lookup(u32 linear, u32* frame, u32* flags) {
    const u32 vpn = PageNumber(linear);
    Entry& e = entries_[vpn % kEntries];
    if (e.valid && e.vpn == vpn) {
      ++stats_.hits;
      *frame = e.frame;
      *flags = e.flags;
      return true;
    }
    ++stats_.misses;
    return false;
  }

  void Insert(u32 linear, u32 frame, u32 flags) {
    const u32 vpn = PageNumber(linear);
    entries_[vpn % kEntries] = Entry{true, vpn, frame, flags};
  }

  void Flush() {
    for (Entry& e : entries_) e.valid = false;
    ++stats_.flushes;
  }

  // INVLPG analogue, used by the kernel model after PTE edits.
  void FlushPage(u32 linear) {
    const u32 vpn = PageNumber(linear);
    Entry& e = entries_[vpn % kEntries];
    if (e.valid && e.vpn == vpn) e.valid = false;
  }

  const Stats& stats() const { return stats_; }

 private:
  std::array<Entry, kEntries> entries_{};
  Stats stats_;
};

}  // namespace palladium

#endif  // SRC_HW_TLB_H_
