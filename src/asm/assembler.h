// Two-pass assembler for the simulated ISA. This plays the role gcc/as play
// in the paper: extensions, trampolines, filters and test programs are all
// written in this assembly dialect and loaded through the object format.
//
// Syntax (AT&T-flavoured: source operand first, destination last):
//
//   ; comment          # comment
//   .text / .data / .bss            section switch
//   .global name                    export
//   .extern name                    import (resolved at load time)
//   .equ NAME, expr                 assemble-time constant
//   .long e1[, e2...]  .word ...  .byte ...
//   .space N           .asciz "str"   .align N
//
//   label:
//     mov  %eax, %ebx          ; register move
//     mov  $imm, %eax          ; immediate (expr allowed)
//     mov  %eax, %ds           ; segment register load (privilege-checked)
//     ld   8(%ebp), %eax       ; 32-bit load;  ld8 / ld16 for narrow
//     ld   %es:4(%ebx,%ecx,2), %eax
//     st   %eax, -4(%esp)      ; 32-bit store; st8 / st16 for narrow
//     sti  $7, 0(%ebx)         ; store immediate
//     lea  4(%ebx,%ecx,4), %edx
//     push %eax | push $expr | push %ds
//     pop  %eax | pop %es
//     add/sub/and/or/xor/imul/udiv/cmp/test {%r|$expr}, %r
//     shl/shr/sar $n, %r
//     neg/not/inc/dec %r
//     jmp label | jmp *%eax
//     je/jne/jb/jae/jbe/ja/jl/jge/jle/jg/js/jns label
//     call label | call *%eax
//     ret | ret $n
//     lcall $expr              ; far call through a call gate selector
//     lret
//     int $expr
//     iret | nop | hlt
//
// Expressions: decimal / 0x hex literals, .equ names, defined or external
// labels, and sym +/- const. A reference to an unresolved symbol emits a
// 32-bit absolute relocation.
#ifndef SRC_ASM_ASSEMBLER_H_
#define SRC_ASM_ASSEMBLER_H_

#include <optional>
#include <string>

#include "src/asm/object_file.h"

namespace palladium {

struct AssembleError {
  int line = 0;
  std::string message;
  std::string ToString() const;
};

// Assembles `source` into a relocatable object. Returns std::nullopt and
// fills *error on the first syntax or semantic error.
std::optional<ObjectFile> Assemble(const std::string& source, AssembleError* error);

// Convenience used throughout tests and benchmarks: assemble + link at
// `base` with `imports`. Dies via returned nullopt with *diag filled.
std::optional<LinkedImage> AssembleAndLink(const std::string& source, u32 base,
                                           const std::map<std::string, u32>& imports,
                                           std::string* diag);

}  // namespace palladium

#endif  // SRC_ASM_ASSEMBLER_H_
