#include "src/asm/object_file.h"

#include <cstring>

namespace palladium {

const Symbol* ObjectFile::FindSymbol(const std::string& name) const {
  for (const Symbol& s : symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::string> ObjectFile::UndefinedSymbols() const {
  std::vector<std::string> out;
  for (const Symbol& s : symbols) {
    if (!s.defined) out.push_back(s.name);
  }
  return out;
}

std::optional<LinkedImage> LinkImage(const ObjectFile& obj, u32 base,
                                     const std::map<std::string, u32>& imports,
                                     LinkError* error) {
  LinkedImage img;
  img.base = base;
  img.text_start = base;
  img.text_size = static_cast<u32>(obj.text.size());
  img.data_start = PageAlignUp(base + img.text_size);
  img.bss_size = obj.bss_size;
  img.data_size = static_cast<u32>(obj.data.size()) + obj.bss_size;

  img.bytes.resize(img.data_start - base + obj.data.size(), 0);
  // Empty sections have a null data(); passing that to memcpy is UB even
  // with a zero length.
  if (!obj.text.empty()) {
    std::memcpy(img.bytes.data(), obj.text.data(), obj.text.size());
  }
  if (!obj.data.empty()) {
    std::memcpy(img.bytes.data() + (img.data_start - base), obj.data.data(), obj.data.size());
  }

  auto section_base = [&](SectionId s) -> u32 {
    switch (s) {
      case SectionId::kText:
        return img.text_start;
      case SectionId::kData:
        return img.data_start;
      case SectionId::kBss:
        return img.data_start + static_cast<u32>(obj.data.size());
    }
    return img.text_start;
  };

  for (const Symbol& s : obj.symbols) {
    if (s.defined) img.symbols[s.name] = section_base(s.section) + s.offset;
  }

  for (const Relocation& r : obj.relocations) {
    u32 value = 0;
    auto it = img.symbols.find(r.symbol);
    if (it != img.symbols.end()) {
      value = it->second;
    } else {
      auto imp = imports.find(r.symbol);
      if (imp == imports.end()) {
        if (error != nullptr) error->message = "unresolved symbol: " + r.symbol;
        return std::nullopt;
      }
      value = imp->second;
    }
    u32 patch_at = (section_base(r.section) - base) + r.offset;
    if (patch_at + 4 > img.bytes.size()) {
      if (error != nullptr) error->message = "relocation outside image: " + r.symbol;
      return std::nullopt;
    }
    i32 cur = 0;
    std::memcpy(&cur, img.bytes.data() + patch_at, 4);
    cur += static_cast<i32>(value) + r.addend;
    std::memcpy(img.bytes.data() + patch_at, &cur, 4);
  }
  return img;
}

std::optional<u32> LinkedImage::Lookup(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) return std::nullopt;
  return it->second;
}

}  // namespace palladium
