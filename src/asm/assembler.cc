#include "src/asm/assembler.h"

#include <cctype>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "src/isa/insn.h"

namespace palladium {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind : u8 { kIdent, kNumber, kString, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  i64 number = 0;
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.'; }
bool IsIdentChar(char c) { return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)); }

bool TokenizeLine(const std::string& line, std::vector<Token>* out, std::string* err) {
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (c == ';' || c == '#') break;  // comment
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"') {
      std::string s;
      ++i;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\' && i + 1 < line.size()) {
          ++i;
          switch (line[i]) {
            case 'n': s += '\n'; break;
            case 't': s += '\t'; break;
            case '0': s += '\0'; break;
            case '\\': s += '\\'; break;
            case '"': s += '"'; break;
            default: s += line[i]; break;
          }
        } else {
          s += line[i];
        }
        ++i;
      }
      if (i >= line.size()) {
        *err = "unterminated string";
        return false;
      }
      ++i;
      Token t;
      t.kind = TokKind::kString;
      t.text = std::move(s);
      out->push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      int base = 10;
      if (c == '0' && i + 1 < line.size() && (line[i + 1] == 'x' || line[i + 1] == 'X')) {
        base = 16;
        i += 2;
      }
      while (i < line.size() && (std::isalnum(static_cast<unsigned char>(line[i])))) ++i;
      Token t;
      t.kind = TokKind::kNumber;
      t.text = line.substr(start, i - start);
      errno = 0;
      t.number = static_cast<i64>(std::strtoll(t.text.c_str(), nullptr, base == 16 ? 16 : 10));
      out->push_back(std::move(t));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < line.size() && IsIdentChar(line[i])) ++i;
      Token t;
      t.kind = TokKind::kIdent;
      t.text = line.substr(start, i - start);
      out->push_back(std::move(t));
      continue;
    }
    // Punctuation (single char): % $ ( ) , : * + -
    Token t;
    t.kind = TokKind::kPunct;
    t.text = std::string(1, c);
    out->push_back(std::move(t));
    ++i;
  }
  Token end;
  end.kind = TokKind::kEnd;
  out->push_back(end);
  return true;
}

// ---------------------------------------------------------------------------
// Parsed operand forms
// ---------------------------------------------------------------------------

struct ExprValue {
  i64 constant = 0;
  std::string symbol;  // empty => pure constant
};

struct MemOperand {
  SegOverride seg = SegOverride::kNone;
  ExprValue disp;
  Reg base = Reg::kEax;
  Reg index = Reg::kEax;
  u8 scale = 0;
  bool absolute = false;  // no base register: address = disp

  u8 base_field() const { return absolute ? kNoBaseReg : static_cast<u8>(base); }
};

// ---------------------------------------------------------------------------
// Assembler state
// ---------------------------------------------------------------------------

struct SectionBuf {
  std::vector<u8> bytes;
  u32 size() const { return static_cast<u32>(bytes.size()); }
};

class AssemblerImpl {
 public:
  std::optional<ObjectFile> Run(const std::string& source, AssembleError* error);

 private:
  bool ParseLine(std::vector<Token>& toks);
  bool ParseDirective(std::vector<Token>& toks);
  bool ParseInstruction(const std::string& mnemonic, std::vector<Token>& toks);

  // Token cursor helpers.
  const Token& Peek() const { return (*toks_)[pos_]; }
  const Token& Next() { return (*toks_)[pos_ < toks_->size() - 1 ? pos_++ : pos_]; }
  bool Accept(const char* punct) {
    if (Peek().kind == TokKind::kPunct && Peek().text == punct) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Expect(const char* punct) {
    if (Accept(punct)) return true;
    return Error(std::string("expected '") + punct + "'");
  }
  bool AtEnd() const { return Peek().kind == TokKind::kEnd; }

  bool Error(const std::string& msg) {
    if (!failed_) {
      error_->line = line_no_;
      error_->message = msg;
      failed_ = true;
    }
    return false;
  }

  std::optional<Reg> ParseGpr();
  std::optional<SegReg> ParseSegReg();
  bool ParseExpr(ExprValue* out);
  bool ParseImmediate(ExprValue* out);  // leading '$'
  bool ParseMemOperand(MemOperand* out);

  SectionBuf& Cur() {
    switch (section_) {
      case SectionId::kText:
        return text_;
      case SectionId::kData:
        return data_;
      case SectionId::kBss:
        return data_;  // never reached; bss handled separately
    }
    return text_;
  }

  void EmitInsn(const Insn& insn, const ExprValue* imm_sym, const ExprValue* disp_sym);
  void AddReloc(u32 field_offset, const ExprValue& e);
  bool DefineLabel(const std::string& name);

  ObjectFile obj_;
  SectionBuf text_;
  SectionBuf data_;
  u32 bss_size_ = 0;
  SectionId section_ = SectionId::kText;
  std::map<std::string, i64> equs_;
  std::map<std::string, Symbol> symbols_;
  std::set<std::string> globals_;
  std::set<std::string> externs_;

  std::vector<Token>* toks_ = nullptr;
  size_t pos_ = 0;
  int line_no_ = 0;
  AssembleError* error_ = nullptr;
  bool failed_ = false;
};

std::optional<Reg> AssemblerImpl::ParseGpr() {
  size_t save = pos_;
  if (!Accept("%")) return std::nullopt;
  if (Peek().kind != TokKind::kIdent) {
    pos_ = save;
    return std::nullopt;
  }
  const std::string& n = Peek().text;
  Reg r;
  if (n == "eax") r = Reg::kEax;
  else if (n == "ebx") r = Reg::kEbx;
  else if (n == "ecx") r = Reg::kEcx;
  else if (n == "edx") r = Reg::kEdx;
  else if (n == "esi") r = Reg::kEsi;
  else if (n == "edi") r = Reg::kEdi;
  else if (n == "ebp") r = Reg::kEbp;
  else if (n == "esp") r = Reg::kEsp;
  else {
    pos_ = save;
    return std::nullopt;
  }
  ++pos_;
  return r;
}

std::optional<SegReg> AssemblerImpl::ParseSegReg() {
  size_t save = pos_;
  if (!Accept("%")) return std::nullopt;
  if (Peek().kind != TokKind::kIdent) {
    pos_ = save;
    return std::nullopt;
  }
  const std::string& n = Peek().text;
  SegReg s;
  if (n == "cs") s = SegReg::kCs;
  else if (n == "ss") s = SegReg::kSs;
  else if (n == "ds") s = SegReg::kDs;
  else if (n == "es") s = SegReg::kEs;
  else {
    pos_ = save;
    return std::nullopt;
  }
  ++pos_;
  return s;
}

bool AssemblerImpl::ParseExpr(ExprValue* out) {
  *out = ExprValue{};
  bool first = true;
  i64 sign = 1;
  for (;;) {
    if (Accept("-")) {
      sign = -sign;
    } else if (Accept("+")) {
      // no-op
    } else if (!first) {
      break;
    }
    if (Peek().kind == TokKind::kNumber) {
      out->constant += sign * Next().number;
    } else if (Peek().kind == TokKind::kIdent) {
      std::string name = Next().text;
      auto eq = equs_.find(name);
      if (eq != equs_.end()) {
        out->constant += sign * eq->second;
      } else {
        if (!out->symbol.empty()) return Error("expression with two symbols: " + name);
        if (sign < 0) return Error("negated symbol in expression: " + name);
        out->symbol = std::move(name);
      }
    } else if (first) {
      return Error("expected expression");
    } else {
      break;
    }
    first = false;
    sign = 1;
    if (Peek().kind == TokKind::kPunct && (Peek().text == "+" || Peek().text == "-")) {
      if (Peek().text == "-") sign = -1;
      ++pos_;
      // fallthrough to parse next term
      if (Peek().kind != TokKind::kNumber && Peek().kind != TokKind::kIdent) {
        return Error("expected term after +/-");
      }
      if (Peek().kind == TokKind::kNumber) {
        out->constant += sign * Next().number;
      } else {
        std::string name = Next().text;
        auto eq = equs_.find(name);
        if (eq != equs_.end()) {
          out->constant += sign * eq->second;
        } else {
          if (!out->symbol.empty()) return Error("expression with two symbols: " + name);
          if (sign < 0) return Error("negated symbol in expression: " + name);
          out->symbol = std::move(name);
        }
      }
      sign = 1;
      continue;
    }
    break;
  }
  return true;
}

bool AssemblerImpl::ParseImmediate(ExprValue* out) {
  if (!Expect("$")) return false;
  return ParseExpr(out);
}

bool AssemblerImpl::ParseMemOperand(MemOperand* out) {
  *out = MemOperand{};
  // Optional segment override: %seg :
  size_t save = pos_;
  if (auto seg = ParseSegReg()) {
    if (Accept(":")) {
      switch (*seg) {
        case SegReg::kCs: out->seg = SegOverride::kCs; break;
        case SegReg::kSs: out->seg = SegOverride::kSs; break;
        case SegReg::kDs: out->seg = SegOverride::kDs; break;
        case SegReg::kEs: out->seg = SegOverride::kEs; break;
      }
    } else {
      pos_ = save;
    }
  }
  // Optional displacement expression before '('.
  if (!(Peek().kind == TokKind::kPunct && Peek().text == "(")) {
    if (!ParseExpr(&out->disp)) return false;
  }
  // No parenthesized base: absolute addressing (`st %esp, SP2_slot`).
  if (!(Peek().kind == TokKind::kPunct && Peek().text == "(")) {
    out->absolute = true;
    return true;
  }
  if (!Expect("(")) return false;
  auto base = ParseGpr();
  if (!base) return Error("expected base register");
  out->base = *base;
  if (Accept(",")) {
    auto index = ParseGpr();
    if (!index) return Error("expected index register");
    out->index = *index;
    out->scale = 1;
    if (Accept(",")) {
      if (Peek().kind != TokKind::kNumber) return Error("expected scale");
      i64 s = Next().number;
      if (s != 1 && s != 2 && s != 4 && s != 8) return Error("scale must be 1/2/4/8");
      out->scale = static_cast<u8>(s);
    }
  }
  return Expect(")");
}

void AssemblerImpl::AddReloc(u32 field_offset, const ExprValue& e) {
  Relocation r;
  r.section = section_;
  r.offset = field_offset;
  r.symbol = e.symbol;
  r.addend = static_cast<i32>(e.constant);
  obj_.relocations.push_back(std::move(r));
}

void AssemblerImpl::EmitInsn(const Insn& insn, const ExprValue* imm_sym,
                             const ExprValue* disp_sym) {
  SectionBuf& sec = Cur();
  u32 at = sec.size();
  u8 raw[kInsnSize];
  Insn copy = insn;
  if (imm_sym != nullptr && !imm_sym->symbol.empty()) {
    copy.imm = 0;
    AddReloc(at + 8, *imm_sym);
  }
  if (disp_sym != nullptr && !disp_sym->symbol.empty()) {
    copy.disp = 0;
    AddReloc(at + 12, *disp_sym);
  }
  copy.EncodeTo(raw);
  sec.bytes.insert(sec.bytes.end(), raw, raw + kInsnSize);
}

bool AssemblerImpl::DefineLabel(const std::string& name) {
  if (symbols_.count(name) != 0 && symbols_[name].defined) {
    return Error("duplicate label: " + name);
  }
  if (equs_.count(name) != 0) return Error("label collides with .equ: " + name);
  Symbol s;
  s.name = name;
  s.section = section_;
  s.offset = section_ == SectionId::kBss ? bss_size_ : Cur().size();
  s.defined = true;
  symbols_[name] = std::move(s);
  return true;
}

bool AssemblerImpl::ParseDirective(std::vector<Token>& toks) {
  (void)toks;
  const std::string d = Next().text;
  if (d == ".text") {
    section_ = SectionId::kText;
    return true;
  }
  if (d == ".data") {
    section_ = SectionId::kData;
    return true;
  }
  if (d == ".bss") {
    section_ = SectionId::kBss;
    return true;
  }
  if (d == ".global" || d == ".globl") {
    if (Peek().kind != TokKind::kIdent) return Error(".global needs a name");
    globals_.insert(Next().text);
    return true;
  }
  if (d == ".extern") {
    if (Peek().kind != TokKind::kIdent) return Error(".extern needs a name");
    externs_.insert(Next().text);
    return true;
  }
  if (d == ".equ") {
    if (Peek().kind != TokKind::kIdent) return Error(".equ needs a name");
    std::string name = Next().text;
    if (!Expect(",")) return false;
    ExprValue v;
    if (!ParseExpr(&v)) return false;
    if (!v.symbol.empty()) return Error(".equ value must be constant");
    equs_[name] = v.constant;
    return true;
  }
  if (d == ".long" || d == ".word" || d == ".byte") {
    u32 width = d == ".long" ? 4u : (d == ".word" ? 2u : 1u);
    if (section_ == SectionId::kBss) return Error("data directive in .bss");
    do {
      ExprValue v;
      if (!ParseExpr(&v)) return false;
      SectionBuf& sec = Cur();
      u32 at = sec.size();
      if (!v.symbol.empty()) {
        if (width != 4) return Error("symbol reference must be .long");
        AddReloc(at, ExprValue{v.constant, v.symbol});
        v.constant = 0;
      }
      for (u32 i = 0; i < width; ++i) {
        sec.bytes.push_back(static_cast<u8>(static_cast<u64>(v.constant) >> (8 * i)));
      }
    } while (Accept(","));
    return true;
  }
  if (d == ".space") {
    ExprValue v;
    if (!ParseExpr(&v)) return false;
    if (!v.symbol.empty() || v.constant < 0) return Error(".space needs a constant");
    if (section_ == SectionId::kBss) {
      bss_size_ += static_cast<u32>(v.constant);
    } else {
      Cur().bytes.resize(Cur().bytes.size() + static_cast<size_t>(v.constant), 0);
    }
    return true;
  }
  if (d == ".asciz" || d == ".ascii") {
    if (Peek().kind != TokKind::kString) return Error(d + " needs a string");
    if (section_ == SectionId::kBss) return Error("string in .bss");
    std::string s = Next().text;
    SectionBuf& sec = Cur();
    sec.bytes.insert(sec.bytes.end(), s.begin(), s.end());
    if (d == ".asciz") sec.bytes.push_back(0);
    return true;
  }
  if (d == ".align") {
    ExprValue v;
    if (!ParseExpr(&v)) return false;
    if (!v.symbol.empty() || v.constant <= 0) return Error(".align needs a positive constant");
    u32 a = static_cast<u32>(v.constant);
    if (section_ == SectionId::kBss) {
      bss_size_ = (bss_size_ + a - 1) / a * a;
    } else {
      SectionBuf& sec = Cur();
      while (sec.size() % a != 0) sec.bytes.push_back(0);
    }
    return true;
  }
  return Error("unknown directive: " + d);
}

bool AssemblerImpl::ParseInstruction(const std::string& m, std::vector<Token>& toks) {
  (void)toks;
  auto simple = [&](Opcode op) {
    Insn i;
    i.opcode = op;
    EmitInsn(i, nullptr, nullptr);
    return true;
  };
  if (m == "nop") return simple(Opcode::kNop);
  if (m == "hlt") return simple(Opcode::kHlt);
  if (m == "iret") return simple(Opcode::kIret);

  if (m == "lret") {
    Insn i;
    i.opcode = Opcode::kLret;
    if (!AtEnd()) {
      ExprValue v;
      if (!ParseImmediate(&v)) return false;
      if (!v.symbol.empty()) return Error("lret $n must be constant");
      i.imm = static_cast<i32>(v.constant);
    }
    EmitInsn(i, nullptr, nullptr);
    return true;
  }

  if (m == "ret") {
    if (AtEnd()) return simple(Opcode::kRet);
    ExprValue v;
    if (!ParseImmediate(&v)) return false;
    if (!v.symbol.empty()) return Error("ret $n must be constant");
    Insn i;
    i.opcode = Opcode::kRetN;
    i.imm = static_cast<i32>(v.constant);
    EmitInsn(i, nullptr, nullptr);
    return true;
  }

  if (m == "mov") {
    // Forms: $imm,%r | %r,%r | %r,%seg | %seg,%r
    if (Peek().kind == TokKind::kPunct && Peek().text == "$") {
      ExprValue v;
      if (!ParseImmediate(&v)) return false;
      if (!Expect(",")) return false;
      auto dst = ParseGpr();
      if (!dst) return Error("mov $imm needs a register destination");
      Insn i;
      i.opcode = Opcode::kMovRI;
      i.r1 = static_cast<u8>(*dst);
      i.imm = static_cast<i32>(v.constant);
      EmitInsn(i, &v, nullptr);
      return true;
    }
    size_t save = pos_;
    if (auto src = ParseGpr()) {
      if (!Expect(",")) return false;
      if (auto dst = ParseGpr()) {
        Insn i;
        i.opcode = Opcode::kMovRR;
        i.r1 = static_cast<u8>(*dst);
        i.r2 = static_cast<u8>(*src);
        EmitInsn(i, nullptr, nullptr);
        return true;
      }
      if (auto seg = ParseSegReg()) {
        Insn i;
        i.opcode = Opcode::kMovSegR;
        i.r1 = static_cast<u8>(*seg);
        i.r2 = static_cast<u8>(*src);
        EmitInsn(i, nullptr, nullptr);
        return true;
      }
      return Error("bad mov destination");
    }
    pos_ = save;
    if (auto seg = ParseSegReg()) {
      if (!Expect(",")) return false;
      auto dst = ParseGpr();
      if (!dst) return Error("mov %seg needs a register destination");
      Insn i;
      i.opcode = Opcode::kMovRSeg;
      i.r1 = static_cast<u8>(*dst);
      i.r2 = static_cast<u8>(*seg);
      EmitInsn(i, nullptr, nullptr);
      return true;
    }
    return Error("bad mov operands");
  }

  if (m == "ld" || m == "ld8" || m == "ld16" || m == "lea") {
    MemOperand mem;
    if (!ParseMemOperand(&mem)) return false;
    if (!Expect(",")) return false;
    auto dst = ParseGpr();
    if (!dst) return Error(m + " needs a register destination");
    Insn i;
    i.opcode = m == "lea" ? Opcode::kLea : Opcode::kLoad;
    i.size = m == "ld8" ? 1 : (m == "ld16" ? 2 : 4);
    i.seg = mem.seg;
    i.r1 = static_cast<u8>(*dst);
    i.r2 = mem.base_field();
    i.r3 = static_cast<u8>(mem.index);
    i.scale = mem.scale;
    i.disp = static_cast<i32>(mem.disp.constant);
    EmitInsn(i, nullptr, &mem.disp);
    return true;
  }

  if (m == "st" || m == "st8" || m == "st16") {
    auto src = ParseGpr();
    if (!src) return Error(m + " needs a register source");
    if (!Expect(",")) return false;
    MemOperand mem;
    if (!ParseMemOperand(&mem)) return false;
    Insn i;
    i.opcode = Opcode::kStore;
    i.size = m == "st8" ? 1 : (m == "st16" ? 2 : 4);
    i.seg = mem.seg;
    i.r1 = static_cast<u8>(*src);
    i.r2 = mem.base_field();
    i.r3 = static_cast<u8>(mem.index);
    i.scale = mem.scale;
    i.disp = static_cast<i32>(mem.disp.constant);
    EmitInsn(i, nullptr, &mem.disp);
    return true;
  }

  if (m == "sti" || m == "sti8" || m == "sti16") {
    ExprValue v;
    if (!ParseImmediate(&v)) return false;
    if (!Expect(",")) return false;
    MemOperand mem;
    if (!ParseMemOperand(&mem)) return false;
    Insn i;
    i.opcode = Opcode::kStoreI;
    i.size = m == "sti8" ? 1 : (m == "sti16" ? 2 : 4);
    i.seg = mem.seg;
    i.imm = static_cast<i32>(v.constant);
    i.r2 = mem.base_field();
    i.r3 = static_cast<u8>(mem.index);
    i.scale = mem.scale;
    i.disp = static_cast<i32>(mem.disp.constant);
    EmitInsn(i, &v, &mem.disp);
    return true;
  }

  if (m == "push") {
    if (Peek().kind == TokKind::kPunct && Peek().text == "$") {
      ExprValue v;
      if (!ParseImmediate(&v)) return false;
      Insn i;
      i.opcode = Opcode::kPushI;
      i.imm = static_cast<i32>(v.constant);
      EmitInsn(i, &v, nullptr);
      return true;
    }
    size_t save = pos_;
    if (auto r = ParseGpr()) {
      Insn i;
      i.opcode = Opcode::kPushR;
      i.r1 = static_cast<u8>(*r);
      EmitInsn(i, nullptr, nullptr);
      return true;
    }
    pos_ = save;
    if (auto s = ParseSegReg()) {
      Insn i;
      i.opcode = Opcode::kPushSeg;
      i.r1 = static_cast<u8>(*s);
      EmitInsn(i, nullptr, nullptr);
      return true;
    }
    return Error("bad push operand");
  }

  if (m == "pop") {
    size_t save = pos_;
    if (auto r = ParseGpr()) {
      Insn i;
      i.opcode = Opcode::kPopR;
      i.r1 = static_cast<u8>(*r);
      EmitInsn(i, nullptr, nullptr);
      return true;
    }
    pos_ = save;
    if (auto s = ParseSegReg()) {
      Insn i;
      i.opcode = Opcode::kPopSeg;
      i.r1 = static_cast<u8>(*s);
      EmitInsn(i, nullptr, nullptr);
      return true;
    }
    return Error("bad pop operand");
  }

  struct AluOps {
    Opcode rr, ri;
  };
  static const std::map<std::string, AluOps> kAlu = {
      {"add", {Opcode::kAddRR, Opcode::kAddRI}},
      {"sub", {Opcode::kSubRR, Opcode::kSubRI}},
      {"and", {Opcode::kAndRR, Opcode::kAndRI}},
      {"or", {Opcode::kOrRR, Opcode::kOrRI}},
      {"xor", {Opcode::kXorRR, Opcode::kXorRI}},
      {"imul", {Opcode::kImulRR, Opcode::kImulRI}},
      {"cmp", {Opcode::kCmpRR, Opcode::kCmpRI}},
      {"test", {Opcode::kTestRR, Opcode::kTestRI}},
  };
  auto alu = kAlu.find(m);
  if (alu != kAlu.end()) {
    if (Peek().kind == TokKind::kPunct && Peek().text == "$") {
      ExprValue v;
      if (!ParseImmediate(&v)) return false;
      if (!Expect(",")) return false;
      auto dst = ParseGpr();
      if (!dst) return Error(m + " needs a register destination");
      Insn i;
      i.opcode = alu->second.ri;
      i.r1 = static_cast<u8>(*dst);
      i.imm = static_cast<i32>(v.constant);
      EmitInsn(i, &v, nullptr);
      return true;
    }
    auto src = ParseGpr();
    if (!src) return Error(m + " needs a register or immediate source");
    if (!Expect(",")) return false;
    auto dst = ParseGpr();
    if (!dst) return Error(m + " needs a register destination");
    Insn i;
    i.opcode = alu->second.rr;
    i.r1 = static_cast<u8>(*dst);
    i.r2 = static_cast<u8>(*src);
    EmitInsn(i, nullptr, nullptr);
    return true;
  }

  if (m == "udiv") {
    auto src = ParseGpr();
    if (!src) return Error("udiv needs a register source");
    if (!Expect(",")) return false;
    auto dst = ParseGpr();
    if (!dst) return Error("udiv needs a register destination");
    Insn i;
    i.opcode = Opcode::kUdivRR;
    i.r1 = static_cast<u8>(*dst);
    i.r2 = static_cast<u8>(*src);
    EmitInsn(i, nullptr, nullptr);
    return true;
  }

  if (m == "shl" || m == "shr" || m == "sar") {
    ExprValue v;
    if (!ParseImmediate(&v)) return false;
    if (!v.symbol.empty()) return Error("shift count must be constant");
    if (!Expect(",")) return false;
    auto dst = ParseGpr();
    if (!dst) return Error(m + " needs a register destination");
    Insn i;
    i.opcode = m == "shl" ? Opcode::kShlRI : (m == "shr" ? Opcode::kShrRI : Opcode::kSarRI);
    i.r1 = static_cast<u8>(*dst);
    i.imm = static_cast<i32>(v.constant);
    EmitInsn(i, nullptr, nullptr);
    return true;
  }

  if (m == "neg" || m == "not" || m == "inc" || m == "dec") {
    auto dst = ParseGpr();
    if (!dst) return Error(m + " needs a register");
    Insn i;
    i.opcode = m == "neg" ? Opcode::kNegR
               : m == "not" ? Opcode::kNotR
               : m == "inc" ? Opcode::kIncR
                            : Opcode::kDecR;
    i.r1 = static_cast<u8>(*dst);
    EmitInsn(i, nullptr, nullptr);
    return true;
  }

  static const std::map<std::string, Opcode> kBranches = {
      {"jmp", Opcode::kJmp}, {"je", Opcode::kJe},   {"jne", Opcode::kJne},
      {"jb", Opcode::kJb},   {"jae", Opcode::kJae}, {"jbe", Opcode::kJbe},
      {"ja", Opcode::kJa},   {"jl", Opcode::kJl},   {"jge", Opcode::kJge},
      {"jle", Opcode::kJle}, {"jg", Opcode::kJg},   {"js", Opcode::kJs},
      {"jns", Opcode::kJns}, {"call", Opcode::kCall},
  };
  auto br = kBranches.find(m);
  if (br != kBranches.end()) {
    if (Accept("*")) {
      auto r = ParseGpr();
      if (!r) return Error("indirect target must be a register");
      Insn i;
      i.opcode = m == "call" ? Opcode::kCallR : Opcode::kJmpR;
      if (m != "call" && m != "jmp") return Error("only jmp/call support indirect targets");
      i.r1 = static_cast<u8>(*r);
      EmitInsn(i, nullptr, nullptr);
      return true;
    }
    ExprValue v;
    if (!ParseExpr(&v)) return false;
    Insn i;
    i.opcode = br->second;
    i.imm = static_cast<i32>(v.constant);
    EmitInsn(i, &v, nullptr);
    return true;
  }

  if (m == "lcall") {
    ExprValue v;
    if (!ParseImmediate(&v)) return false;
    Insn i;
    i.opcode = Opcode::kLcall;
    i.imm = static_cast<i32>(v.constant);
    EmitInsn(i, &v, nullptr);
    return true;
  }

  if (m == "int") {
    ExprValue v;
    if (!ParseImmediate(&v)) return false;
    if (!v.symbol.empty()) return Error("int vector must be constant");
    Insn i;
    i.opcode = Opcode::kInt;
    i.imm = static_cast<i32>(v.constant);
    EmitInsn(i, nullptr, nullptr);
    return true;
  }

  return Error("unknown mnemonic: " + m);
}

bool AssemblerImpl::ParseLine(std::vector<Token>& toks) {
  toks_ = &toks;
  pos_ = 0;
  // Labels (possibly several) at line start.
  while (Peek().kind == TokKind::kIdent && toks.size() > pos_ + 1 &&
         toks[pos_ + 1].kind == TokKind::kPunct && toks[pos_ + 1].text == ":") {
    std::string name = Peek().text;
    if (name[0] == '.') break;  // directive, not a label
    pos_ += 2;
    if (!DefineLabel(name)) return false;
  }
  if (AtEnd()) return true;
  if (Peek().kind != TokKind::kIdent) return Error("expected mnemonic or directive");
  if (Peek().text[0] == '.') {
    if (!ParseDirective(toks)) return false;
  } else {
    std::string mnemonic = Next().text;
    if (section_ == SectionId::kBss) return Error("instruction in .bss");
    if (section_ == SectionId::kData) return Error("instruction in .data");
    if (!ParseInstruction(mnemonic, toks)) return false;
  }
  if (!AtEnd()) return Error("trailing tokens on line");
  return true;
}

std::optional<ObjectFile> AssemblerImpl::Run(const std::string& source, AssembleError* error) {
  error_ = error;
  size_t start = 0;
  line_no_ = 0;
  while (start <= source.size()) {
    size_t end = source.find('\n', start);
    if (end == std::string::npos) end = source.size();
    std::string line = source.substr(start, end - start);
    ++line_no_;
    std::vector<Token> toks;
    std::string terr;
    if (!TokenizeLine(line, &toks, &terr)) {
      Error(terr);
      return std::nullopt;
    }
    if (!ParseLine(toks)) return std::nullopt;
    start = end + 1;
  }

  // Finalize the object.
  obj_.text = std::move(text_.bytes);
  obj_.data = std::move(data_.bytes);
  obj_.bss_size = bss_size_;
  for (auto& [name, sym] : symbols_) {
    sym.global = globals_.count(name) != 0;
    obj_.symbols.push_back(sym);
  }
  for (const std::string& e : externs_) {
    if (symbols_.count(e) != 0) continue;  // defined after all; not an import
    Symbol s;
    s.name = e;
    s.defined = false;
    s.global = true;
    obj_.symbols.push_back(std::move(s));
  }
  // Every relocation symbol must be a label or an extern.
  for (const Relocation& r : obj_.relocations) {
    if (symbols_.count(r.symbol) == 0 && externs_.count(r.symbol) == 0) {
      error_->line = 0;
      error_->message = "undefined symbol (did you forget .extern?): " + r.symbol;
      return std::nullopt;
    }
  }
  return std::move(obj_);
}

}  // namespace

std::string AssembleError::ToString() const {
  return "line " + std::to_string(line) + ": " + message;
}

std::optional<ObjectFile> Assemble(const std::string& source, AssembleError* error) {
  AssemblerImpl impl;
  return impl.Run(source, error);
}

std::optional<LinkedImage> AssembleAndLink(const std::string& source, u32 base,
                                           const std::map<std::string, u32>& imports,
                                           std::string* diag) {
  AssembleError aerr;
  auto obj = Assemble(source, &aerr);
  if (!obj) {
    if (diag != nullptr) *diag = "assemble: " + aerr.ToString();
    return std::nullopt;
  }
  LinkError lerr;
  auto img = LinkImage(*obj, base, imports, &lerr);
  if (!img) {
    if (diag != nullptr) *diag = "link: " + lerr.message;
    return std::nullopt;
  }
  return img;
}

}  // namespace palladium
