// Relocatable object format produced by the assembler and consumed by the
// module loaders (the analogue of the ELF .o files that insmod / dlopen
// handle in the paper's prototype).
//
// Addresses are always *segment-relative*: code linked for a kernel
// extension segment is linked against offset 0 of that segment, exactly as
// EIP is segment-relative on the simulated hardware.
#ifndef SRC_ASM_OBJECT_FILE_H_
#define SRC_ASM_OBJECT_FILE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/hw/types.h"

namespace palladium {

enum class SectionId : u8 { kText = 0, kData = 1, kBss = 2 };

struct Symbol {
  std::string name;
  SectionId section = SectionId::kText;
  u32 offset = 0;
  bool global = false;
  bool defined = false;  // false => import (.extern)
};

// A 32-bit absolute relocation: *(i32*)(section_bytes + offset) += S + A,
// where S is the resolved address of `symbol`.
struct Relocation {
  SectionId section = SectionId::kText;
  u32 offset = 0;
  std::string symbol;
  i32 addend = 0;
};

struct ObjectFile {
  std::vector<u8> text;
  std::vector<u8> data;
  u32 bss_size = 0;
  std::vector<Symbol> symbols;
  std::vector<Relocation> relocations;

  const Symbol* FindSymbol(const std::string& name) const;
  std::vector<std::string> UndefinedSymbols() const;
};

// A fully linked, loadable image: text, then data, then bss, laid out
// contiguously from `base` (data page-aligned so the loader can give data
// pages different protections from text pages).
struct LinkedImage {
  u32 base = 0;
  u32 text_start = 0, text_size = 0;
  u32 data_start = 0, data_size = 0;  // data_size includes bss
  u32 bss_size = 0;
  std::vector<u8> bytes;  // text..data (bss is implicit zeroes)
  std::map<std::string, u32> symbols;  // global + local, absolute addresses

  u32 TotalSpan() const { return data_start - base + data_size; }
  std::optional<u32> Lookup(const std::string& name) const;
};

struct LinkError {
  std::string message;
};

// Links one object at `base`. `imports` resolves .extern symbols to absolute
// addresses; a missing import is a LinkError.
std::optional<LinkedImage> LinkImage(const ObjectFile& obj, u32 base,
                                     const std::map<std::string, u32>& imports,
                                     LinkError* error);

}  // namespace palladium

#endif  // SRC_ASM_OBJECT_FILE_H_
