#include "src/bpf/bpf.h"

#include <cstring>
#include <sstream>

namespace palladium {

bool BpfProgram::Validate(std::string* error) const {
  if (insns_.empty()) {
    if (error != nullptr) *error = "empty program";
    return false;
  }
  for (u32 i = 0; i < insns_.size(); ++i) {
    const BpfInsn& in = insns_[i];
    switch (in.code) {
      case BpfOp::kJmpJa:
        // 64-bit arithmetic: a huge k must not wrap i+1+k back into range
        // (a wrapped "forward" jump is a backward jump — an infinite loop).
        if (static_cast<u64>(i) + 1 + in.k >= insns_.size()) {
          if (error != nullptr) *error = "ja target out of range";
          return false;
        }
        break;
      case BpfOp::kJmpJeqK:
      case BpfOp::kJmpJgtK:
      case BpfOp::kJmpJgeK:
      case BpfOp::kJmpJsetK:
        if (static_cast<u64>(i) + 1 + in.jt >= insns_.size() ||
            static_cast<u64>(i) + 1 + in.jf >= insns_.size()) {
          if (error != nullptr) *error = "conditional target out of range";
          return false;
        }
        break;
      case BpfOp::kLdWAbs:
      case BpfOp::kLdHAbs:
      case BpfOp::kLdBAbs:
      case BpfOp::kLdImm:
      case BpfOp::kAluAndK:
      case BpfOp::kAluAddK:
      case BpfOp::kRetK:
      case BpfOp::kRetA:
        break;
      default:
        if (error != nullptr) *error = "unknown opcode";
        return false;
    }
  }
  const BpfOp last = insns_.back().code;
  if (last != BpfOp::kRetK && last != BpfOp::kRetA && last != BpfOp::kJmpJa) {
    if (error != nullptr) *error = "program may fall off the end";
    return false;
  }
  return true;
}

std::vector<u8> BpfProgram::Serialize() const {
  std::vector<u8> out(insns_.size() * 8);
  for (u32 i = 0; i < insns_.size(); ++i) {
    const BpfInsn& in = insns_[i];
    u16 code = static_cast<u16>(in.code);
    std::memcpy(&out[i * 8 + 0], &code, 2);
    out[i * 8 + 2] = in.jt;
    out[i * 8 + 3] = in.jf;
    std::memcpy(&out[i * 8 + 4], &in.k, 4);
  }
  return out;
}

u32 BpfInterpretHost(const BpfProgram& prog, const u8* pkt, u32 len, BpfHostStats* stats) {
  u32 a = 0;
  const auto& insns = prog.insns();
  if (stats != nullptr) ++stats->packets;
  auto bad = [stats]() -> u32 {
    if (stats != nullptr) ++stats->bad_accesses;
    return 0;
  };
  for (u32 pc = 0; pc < insns.size();) {
    const BpfInsn& in = insns[pc];
    if (stats != nullptr) ++stats->insns;
    switch (in.code) {
      case BpfOp::kLdWAbs:
        // 64-bit bound: k near UINT32_MAX must not wrap k+4 below len and
        // read out of bounds of the host packet buffer.
        if (static_cast<u64>(in.k) + 4 > len) return bad();
        a = (static_cast<u32>(pkt[in.k]) << 24) | (static_cast<u32>(pkt[in.k + 1]) << 16) |
            (static_cast<u32>(pkt[in.k + 2]) << 8) | pkt[in.k + 3];
        ++pc;
        break;
      case BpfOp::kLdHAbs:
        if (static_cast<u64>(in.k) + 2 > len) return bad();
        a = (static_cast<u32>(pkt[in.k]) << 8) | pkt[in.k + 1];
        ++pc;
        break;
      case BpfOp::kLdBAbs:
        if (in.k >= len) return bad();
        a = pkt[in.k];
        ++pc;
        break;
      case BpfOp::kLdImm:
        a = in.k;
        ++pc;
        break;
      case BpfOp::kJmpJa:
        pc += 1 + in.k;
        break;
      case BpfOp::kJmpJeqK:
        pc += 1 + (a == in.k ? in.jt : in.jf);
        break;
      case BpfOp::kJmpJgtK:
        pc += 1 + (a > in.k ? in.jt : in.jf);
        break;
      case BpfOp::kJmpJgeK:
        pc += 1 + (a >= in.k ? in.jt : in.jf);
        break;
      case BpfOp::kJmpJsetK:
        pc += 1 + ((a & in.k) != 0 ? in.jt : in.jf);
        break;
      case BpfOp::kAluAndK:
        a &= in.k;
        ++pc;
        break;
      case BpfOp::kAluAddK:
        a += in.k;
        ++pc;
        break;
      case BpfOp::kRetK:
        return in.k;
      case BpfOp::kRetA:
        return a;
    }
  }
  return 0;
}

std::string BpfInterpreterAsmSource(u32 prog_addr, u32 pkt_addr) {
  std::ostringstream os;
  os << "  .equ PROG, " << prog_addr << "\n"
     << "  .equ PKT, " << pkt_addr << "\n";
  // Register allocation mirrors the C interpreter in bpf_filter():
  // %eax = accumulator A, %ebx = insn pointer, %ecx = opcode scratch,
  // %edx = k, %esi = packet length, %edi = scratch.
  os << R"(
  .global bpf_run
bpf_run:
  push %ebp
  mov %esp, %ebp
  push %ebx              ; bpf_filter() is a real C function: save
  push %esi              ; the callee-saved registers it burns on
  push %edi              ; pc / A / X / len state
  ld 8(%ebp), %esi       ; packet length
  mov $PROG, %ebx
  mov $0, %eax
bpf_loop:
  ld16 0(%ebx), %ecx     ; opcode dispatch (the interpreter's switch)
  ld 4(%ebx), %edx       ; immediate k
  cmp $0x20, %ecx
  je op_ldw
  cmp $0x28, %ecx
  je op_ldh
  cmp $0x30, %ecx
  je op_ldb
  cmp $0x15, %ecx
  je op_jeq
  cmp $0x06, %ecx
  je op_retk
  cmp $0x16, %ecx
  je op_reta
  cmp $0x00, %ecx
  je op_ldi
  cmp $0x05, %ecx
  je op_ja
  cmp $0x25, %ecx
  je op_jgt
  cmp $0x35, %ecx
  je op_jge
  cmp $0x45, %ecx
  je op_jset
  cmp $0x54, %ecx
  je op_andk
  cmp $0x04, %ecx
  je op_addk
  mov $0, %eax           ; unknown opcode: reject the packet
  jmp bpf_done
op_ldw:
  cmp %esi, %edx         ; overflow-free bound: reject k >= len, then
  jae bad_access         ; require len - k >= 4 (k+4 could wrap at 2^32)
  mov %esi, %edi
  sub %edx, %edi
  cmp $4, %edi
  jb bad_access
  ld8 PKT(%edx), %eax
  shl $8, %eax
  ld8 PKT+1(%edx), %edi
  or %edi, %eax
  shl $8, %eax
  ld8 PKT+2(%edx), %edi
  or %edi, %eax
  shl $8, %eax
  ld8 PKT+3(%edx), %edi
  or %edi, %eax
  jmp next_insn
op_ldh:
  cmp %esi, %edx
  jae bad_access
  mov %esi, %edi
  sub %edx, %edi
  cmp $2, %edi
  jb bad_access
  ld8 PKT(%edx), %eax
  shl $8, %eax
  ld8 PKT+1(%edx), %edi
  or %edi, %eax
  jmp next_insn
op_ldb:
  cmp %esi, %edx
  jae bad_access
  ld8 PKT(%edx), %eax
  jmp next_insn
op_ldi:
  mov %edx, %eax
  jmp next_insn
op_ja:
  shl $3, %edx           ; pc += k (then the common +1)
  add %edx, %ebx
  jmp next_insn
op_jeq:
  cmp %edx, %eax
  je take_jt
  jmp take_jf
op_jgt:
  cmp %edx, %eax
  ja take_jt
  jmp take_jf
op_jge:
  cmp %edx, %eax
  jae take_jt
  jmp take_jf
op_jset:
  mov %eax, %edi
  and %edx, %edi
  cmp $0, %edi
  jne take_jt
  jmp take_jf
op_andk:
  and %edx, %eax
  jmp next_insn
op_addk:
  add %edx, %eax
  jmp next_insn
take_jt:
  ld8 2(%ebx), %edi
  shl $3, %edi
  add %edi, %ebx
  jmp next_insn
take_jf:
  ld8 3(%ebx), %edi
  shl $3, %edi
  add %edi, %ebx
  jmp next_insn
op_retk:
  mov %edx, %eax
  jmp bpf_done
op_reta:
  jmp bpf_done
bad_access:
  mov $0, %eax
bpf_done:
  pop %edi
  pop %esi
  pop %ebx
  pop %ebp
  ret
next_insn:
  add $8, %ebx
  jmp bpf_loop
)";
  return os.str();
}

}  // namespace palladium
