// Classic BSD Packet Filter (BPF) virtual machine [McCanne & Jacobson '93]:
// the interpreted baseline of Figure 7. Includes the instruction set, a
// validator, a host reference interpreter, and an interpreter written in
// simulated assembly so that the Figure-7 comparison measures both systems
// on the same simulated CPU.
#ifndef SRC_BPF_BPF_H_
#define SRC_BPF_BPF_H_

#include <optional>
#include <string>
#include <vector>

#include "src/hw/types.h"

namespace palladium {

// Opcode encoding (a compact subset of classic BPF, same structure).
enum class BpfOp : u16 {
  kLdWAbs = 0x20,   // A <- be32(pkt[k])
  kLdHAbs = 0x28,   // A <- be16(pkt[k])
  kLdBAbs = 0x30,   // A <- pkt[k]
  kLdImm = 0x00,    // A <- k
  kJmpJa = 0x05,    // pc += k
  kJmpJeqK = 0x15,  // pc += (A == k) ? jt : jf
  kJmpJgtK = 0x25,
  kJmpJgeK = 0x35,
  kJmpJsetK = 0x45, // pc += (A & k) ? jt : jf
  kAluAndK = 0x54,  // A &= k
  kAluAddK = 0x04,
  kRetK = 0x06,     // return k
  kRetA = 0x16,     // return A
};

struct BpfInsn {
  BpfOp code = BpfOp::kRetK;
  u8 jt = 0;
  u8 jf = 0;
  u32 k = 0;
};

class BpfProgram {
 public:
  BpfProgram() = default;
  explicit BpfProgram(std::vector<BpfInsn> insns) : insns_(std::move(insns)) {}

  const std::vector<BpfInsn>& insns() const { return insns_; }
  void Append(BpfInsn insn) { insns_.push_back(insn); }
  u32 size() const { return static_cast<u32>(insns_.size()); }

  // Forward-jumps-only, in-range targets, terminates with RET on all paths.
  bool Validate(std::string* error) const;

  // Serializes to the in-memory layout the simulated interpreter walks:
  // 8 bytes per insn: [code u16][jt u8][jf u8][k u32], little-endian.
  std::vector<u8> Serialize() const;

 private:
  std::vector<BpfInsn> insns_;
};

// Interpreter counters for the obs layer (packets run, insns retired,
// accesses rejected by the bounds checks).
struct BpfHostStats {
  u64 packets = 0;
  u64 insns = 0;
  u64 bad_accesses = 0;
};

// Host reference interpreter (for cross-validation against the simulated
// one). Returns the filter's accept value; 0 on fall-off or bad access.
// `stats`, when given, accumulates across calls.
u32 BpfInterpretHost(const BpfProgram& prog, const u8* pkt, u32 len,
                     BpfHostStats* stats = nullptr);

// The interpreter as simulated assembly. It expects, at assembly-time
// constants: PROG at `prog_addr` (serialized program), PKT at `pkt_addr`,
// and the packet length passed as the function argument. Exports `bpf_run`.
std::string BpfInterpreterAsmSource(u32 prog_addr, u32 pkt_addr);

}  // namespace palladium

#endif  // SRC_BPF_BPF_H_
