// The kernel model: a Linux-2.0.34-style kernel (as modified by Palladium)
// running as host code over the simulated hardware. It owns the GDT/IDT,
// per-process page tables with the Figure-2 address-space layout, demand
// paging with Palladium's PPL policy, system-call dispatch through an
// interrupt gate, signals, fork/exec, and the taskSPL syscall gating of
// Section 4.5.2. The Palladium extension mechanisms (src/core) plug into the
// hooks exposed here.
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/asm/object_file.h"
#include "src/hw/irq.h"
#include "src/hw/machine.h"
#include "src/hw/paging.h"
#include "src/hw/timer.h"
#include "src/kernel/abi.h"
#include "src/kernel/page_alloc.h"
#include "src/kernel/process.h"
#include "src/obs/profile.h"

namespace palladium {

class Scheduler;

namespace obs {
class FlightRecorder;
}  // namespace obs

// Outcome of RunProcess.
enum class RunOutcome : u8 {
  kExited,       // process called exit
  kKilled,       // unrecoverable fault
  kCycleLimit,   // budget exhausted while still runnable
  kBlocked,      // parked in a blocking syscall; resumable via WakeProcess
};

struct RunResult {
  RunOutcome outcome = RunOutcome::kExited;
  i32 exit_code = 0;
  std::string kill_reason;
};

// What a dispatched CPU stop means for the run loop that observed it.
enum class StopAction : u8 {
  kContinue,    // handled; keep running the current process
  kPreempt,     // scheduler requested a context switch (slice expiry, yield)
  kBlocked,     // current process went to sleep; its context is saved
  kTerminated,  // current process exited or was killed
};

class Kernel {
 public:
  struct Config {
    u64 extension_cycle_limit = 5'000'000;  // per-invocation CPU-time cap
    u64 timer_slice_cycles = 50'000;        // granularity of the limit check
    // Hardware-timer interrupt delivery. Off by default: the cooperative
    // slice check in RunProcess then performs the same watchdog duties, so
    // existing single-process callers observe byte-identical behavior.
    // Attaching a Scheduler enables it (preemption needs a timer).
    bool timer_interrupts = false;
    u64 timer_period_cycles = 0;  // 0 = timer_slice_cycles
    KernelCosts costs;
  };

  explicit Kernel(Machine& machine);
  Kernel(Machine& machine, const Config& config);

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  Cpu& cpu() { return machine_.cpu(); }
  FrameAllocator& frames() { return frames_; }
  const Config& config() const { return config_; }
  KernelCosts& costs() { return config_.costs; }

  // --- Processes -------------------------------------------------------------
  Pid CreateProcess();
  Process* process(Pid pid);

  // Loads a linked user image: text (read-exec), data+bss (read-write), a
  // stack area, a heap area, and the signal trampoline page. Sets the saved
  // context to enter at `entry_symbol` at SPL 3.
  bool LoadUserImage(Pid pid, const LinkedImage& image, const std::string& entry_symbol,
                     std::string* diag);

  // exec() semantics (host-level, standing in for the syscall + filesystem):
  // replaces the address space with `image`; taskSPL resets to 3 (the paper:
  // privilege levels are *not* inherited across exec).
  bool ExecImage(Pid pid, const LinkedImage& image, const std::string& entry_symbol,
                 std::string* diag);

  // Runs the process until exit/kill or cycle budget exhaustion.
  RunResult RunProcess(Pid pid, u64 cycle_budget = ~0ull);

  // --- Memory ----------------------------------------------------------------
  // Adds a VmArea (no eager mapping). Returns false on overlap.
  bool AddArea(Process& proc, u32 start, u32 end, u32 prot, const char* tag);
  // Demand-pages one user page according to the Palladium PPL policy.
  bool MapUserPage(Process& proc, u32 linear, const VmArea& area);
  // Eagerly materializes every page of [start,end).
  bool PopulateRange(Process& proc, u32 start, u32 end);
  // Reads/writes process memory from the host (kernel copy_to/from_user).
  bool CopyToUser(Process& proc, u32 linear, const void* src, u32 len);
  bool CopyFromUser(Process& proc, u32 linear, void* dst, u32 len);
  // Removes an area and frees its frames (munmap's core).
  bool UnmapArea(Process& proc, u32 start, u32 end);
  // Page-table access for the Palladium module (set_range etc).
  bool SetPageUserBit(Process& proc, u32 linear, bool user);
  bool SetPageWritable(Process& proc, u32 linear, bool writable);
  std::optional<u32> GetPte(Process& proc, u32 linear);

  // --- Kernel virtual memory --------------------------------------------------
  // Maps `linear` (in kernel space, >= 3 GB) to a fresh frame in every
  // process (kernel mappings are shared). Returns the frame, 0 on OOM.
  u32 MapKernelPage(u32 linear, bool user_bit = false);
  // Undoes MapKernelPage: evicts the frame from every vCPU's decode cache,
  // unmaps the shared kernel PTE (shooting down all TLBs/D-TLBs) and frees
  // the frame. Returns false if the page was not mapped.
  bool UnmapKernelPage(u32 linear);
  // Direct-map helpers: kernel linear <-> physical.
  static u32 KernelLinearToPhys(u32 linear) { return linear - kKernelBase; }
  // The kernel-only page directory (valid CR3 when no process is current).
  u32 kernel_cr3() const { return kernel_page_dir_template_; }
  // Read/write kernel virtual memory (e.g. extension segments) from the host.
  bool WriteKernelVirt(u32 linear, const void* src, u32 len);
  bool ReadKernelVirt(u32 linear, void* dst, u32 len);
  // Reads a NUL-terminated string from the current process (max 256 bytes).
  std::optional<std::string> ReadUserString(Process& proc, u32 linear);

  // --- Host-call and fault hooks (used by src/core) ---------------------------
  // Handler receives the kernel; return value semantics: the handler is
  // responsible for adjusting CPU state (e.g. ReturnFromGate).
  using HostCallHandler = std::function<void(Kernel&)>;
  void RegisterHostCall(u32 id, HostCallHandler handler);
  u32 AllocateHostCallId();
  // Linear address of a host entry (for gate targets): kernel-segment offset.
  static u32 HostEntryOffset(u32 id) { return id * kInsnSize; }

  // Fault hook: invoked for faults raised at CPL 1/2 (kernel-extension and
  // application-segment contexts). Returns true if handled (execution may
  // continue or the context was redirected); false falls through to the
  // default handler.
  using FaultHook = std::function<bool(Kernel&, const StopInfo&)>;
  void SetExtensionFaultHook(FaultHook hook) { extension_fault_hook_ = std::move(hook); }

  // Hook consulted when the extension time limit fires (user extensions).
  using TimeLimitHook = std::function<void(Kernel&, Process&)>;
  void SetTimeLimitHook(TimeLimitHook hook) { time_limit_hook_ = std::move(hook); }

  // --- Interrupts --------------------------------------------------------------
  // The kernel owns the interrupt fabric: one PIC + hub + local interval
  // timer *per vCPU* (the 8259/APIC-timer analogue). Shared devices (NIC,
  // ...) attach to vCPU 0's hub — I/O interrupts route to the boot CPU, the
  // classic pre-IO-APIC model — while every core's local timer drives its
  // own preemption slice and extension watchdog, and the IPI lines
  // (kIrqIpiShootdown / kIrqIpiResched) carry cross-CPU kicks. IDT gates for
  // vectors 0x20..0x2F are always installed; delivery begins when
  // EnableTimerInterrupts() attaches each hub to its CPU and arms the
  // timers. From then on the extension watchdog runs off the timer
  // interrupt instead of the cooperative RunProcess slice check.
  void EnableTimerInterrupts();
  bool interrupts_enabled() const { return interrupts_enabled_; }
  // The I/O fabric (vCPU 0's): where devices raise their lines.
  InterruptController& pic() { return fabric_[0]->pic; }
  IrqHub& irq_hub() { return fabric_[0]->hub; }
  IntervalTimer& timer() { return fabric_[0]->timer; }
  // Per-CPU fabric.
  InterruptController& pic(u32 cpu_index) { return fabric_[cpu_index]->pic; }
  IrqHub& irq_hub(u32 cpu_index) { return fabric_[cpu_index]->hub; }
  IntervalTimer& timer(u32 cpu_index) { return fabric_[cpu_index]->timer; }
  u32 num_cpus() const { return machine_.num_cpus(); }

  // --- SMP ---------------------------------------------------------------------
  // Cross-CPU coherence. The shootdown protocol rides the page-table editor
  // hook: every PTE edit flushes the edited page on the initiating CPU
  // (INVLPG), and — exactly like a real kernel's flush_tlb_others with the
  // initiator spinning for acks — synchronously invalidates the page on
  // every remote CPU that could cache the translation (same CR3, or any CPU
  // for shared kernel-range mappings) before the edit returns. The remote
  // cost is modelled by a shootdown IPI raised on each such CPU's local
  // PIC: the target core takes the interrupt at its next retire boundary
  // and pays gate + dispatch cycles. Flushing the hardware TLB page bumps
  // Tlb::change_count(), which kills the target's D-TLB and decoded-page
  // fetch TLB in O(1) — so no stale data or instruction fast path survives
  // a remote PTE edit, with or without the fast paths enabled.
  struct SmpStats {
    u64 shootdown_pages = 0;  // PTE edits that broadcast remote invalidations
    u64 shootdown_ipis = 0;   // shootdown IPIs raised on remote cores
    u64 full_flushes = 0;     // address-space-wide flush broadcasts
    u64 ipis_received = 0;    // IPI vectors delivered on any core
  };
  const SmpStats& smp_stats() const { return smp_stats_; }
  // Raises an IPI line on the target CPU's local PIC.
  void SendIpi(u32 target_cpu, u32 ipi_irq);
  // The editor-hook body: local INVLPG + remote shootdown (see above).
  void ShootdownPage(u32 cr3, u32 linear);
  // Full-flush analogue for address-space-wide permission changes
  // (exec, init_PL): flushes every CPU running `cr3`.
  void FlushAddressSpace(u32 cr3);

  // --- Epoch-staged cross-CPU work (threaded SMP mode) ----------------------
  // With staging on, the *remote* side of every cross-CPU operation —
  // sibling TLB shootdowns/flushes, IPIs, sibling decode-cache frame
  // evictions, cross-queue scheduler wakeups — is queued per target instead
  // of applied synchronously. The threaded harness drains each target's
  // queue (DrainRemoteOps) in the quiesced epoch-barrier window, so remote
  // effects land no later than the next barrier, which is the delivery
  // contract ThreadedSmp promises. Local effects (the initiator's own
  // INVLPG/flush/evict) stay synchronous either way. Staging is off by
  // default: the interleaver's synchronous protocol remains the oracle and
  // the default semantics.
  //
  // Staging may be requested from any thread (StageRemoteWork-style
  // channels); draining and the initiator-side recorder events assume the
  // caller is in a quiesced/serial context with current_cpu meaningful.
  struct RemoteOp {
    enum class Kind : u8 { kFlushPage, kFlushAll, kIpi, kEvictFrame, kWake };
    Kind kind;
    u32 arg = 0;    // kFlushPage: linear; kEvictFrame: frame; kWake: pid
    u32 irq = 0;    // kIpi: IRQ line on the target's local PIC
    u64 stamp = 0;  // kWake: the waker's cycle stamp (causality)
  };
  void set_stage_remote_ops(bool on) { stage_remote_ops_ = on; }
  bool stage_remote_ops() const { return stage_remote_ops_; }
  // Applies the target's queued ops in FIFO order as-if executing on the
  // target core (temporarily switches current_cpu and disables staging so
  // the synchronous appliers run). Returns the number of ops applied.
  u32 DrainRemoteOps(u32 target_cpu);
  u32 staged_remote_ops(u32 target_cpu) const;
  void StageRemoteOp(u32 target_cpu, const RemoteOp& op);

  // Handler for a device IRQ (NIC, ...), run host-side after the interrupted
  // context has been restored. The timer IRQ is the kernel's own.
  using IrqHandler = std::function<void(Kernel&)>;
  void RegisterIrqHandler(u32 irq, IrqHandler handler);
  void UnregisterIrqHandler(u32 irq) { irq_handlers_.erase(irq); }
  void UnregisterSyscall(u32 number) { extra_syscalls_.erase(number); }

  // IRET from the current interrupt-gate frame preserving every register
  // (hardware interrupts must be transparent to the interrupted code).
  void ReturnFromInterrupt();

  // Full IRQ service from a live gate frame: charge, EOI, resume the
  // interrupted context, then run watchdog/scheduler bookkeeping (skipped
  // in_kernel_context, e.g. during a kernel-extension invocation) and the
  // registered device handler. Returns true if the scheduler asked to
  // preempt the current process.
  bool HandleIrqFromGate(u32 irq, bool in_kernel_context);

  // Idle-loop IRQ service: advances devices to the current cycle counter and
  // dispatches handlers directly (there is no simulated context to interrupt).
  void ServicePendingIrqsHostSide();

  // Dispatches one CPU stop (host call / fault / halt) and reports what the
  // run loop should do next. Shared by RunProcess and the Scheduler.
  StopAction DispatchStop(const StopInfo& stop);

  // --- Blocking / wakeup -------------------------------------------------------
  // Parks the current process mid-syscall: the saved context re-executes the
  // `int $0x80` on wakeup (restart semantics, as Linux does for interrupted
  // slow syscalls). The caller must not ReturnFromGate afterwards.
  void BlockCurrentForRestart();
  void WakeProcess(Process& proc);

  void set_scheduler(Scheduler* sched) { sched_ = sched; }
  Scheduler* scheduler() { return sched_; }

  // --- Observability (optional, pure observers) --------------------------------
  // Attaches a flight recorder (tracks 0..N-1 = vCPUs; device tracks are the
  // harness's business) and/or a cycle profiler to the whole machine: every
  // CPU gets its hooks, and kernel-level transitions (IRQ service, context
  // switches, shootdowns, protection crossings) record/attribute through
  // these pointers. Hooks only read the cycle counters — they never charge —
  // so runs are byte-identical with telemetry attached. nullptr detaches.
  void AttachObservability(obs::FlightRecorder* recorder, obs::CycleProfile* profiler);
  obs::FlightRecorder* recorder() const { return recorder_; }
  obs::CycleProfile* profiler() const { return profiler_; }
  // Category switch + restore helpers for host-side kernel code running on
  // the current vCPU (no-ops when no profiler is attached).
  obs::Category ProfileSet(obs::Category cat);
  void ProfileRestore(obs::Category cat) { ProfileSet(cat); }

  // --- Syscall/gate plumbing ---------------------------------------------------
  // Emulates IRET from the current interrupt-gate frame, placing `eax_value`
  // in EAX. Used by every syscall handler.
  void ReturnFromGate(u32 eax_value);
  // Reads the interrupt frame of the in-progress gate entry.
  struct GateFrame {
    u32 eip = 0, cs = 0, eflags = 0, esp = 0, ss = 0;
    bool has_outer_stack = false;
  };
  bool PeekGateFrame(GateFrame* frame);
  // Rewrites the CS/SS selectors in the current gate frame (init_PL uses
  // this to return the caller at SPL 2 instead of SPL 3).
  bool PatchGateFrameSelectors(Selector cs, Selector ss);

  // Charges host-side kernel work to the simulated cycle counter.
  void Charge(u32 cycles) { cpu().set_cycles(cpu().cycles() + cycles); }

  // --- Signals ----------------------------------------------------------------
  // Queues + immediately delivers `signo` to the process's registered
  // handler (at the application privilege level); kills on no handler.
  void DeliverSignal(Process& proc, u32 signo);

  // --- Console ----------------------------------------------------------------
  const std::string& console() const { return console_; }
  void ClearConsole() { console_.clear(); }

  // The process running on the *current* vCPU (the one whose trap the
  // kernel is servicing), and per-CPU lookup for schedulers/harnesses.
  Process* current() { return current_[machine_.current_cpu_index()]; }
  Process* current(u32 cpu_index) { return current_[cpu_index]; }
  DescriptorTable& gdt() { return machine_.gdt(); }

  // The paper's Extension Function Table lives in the kernel (Figure 4);
  // the kext module populates it and kSysInvokeKext consults it.
  using KextInvoker = std::function<u32(Kernel&, u32 function_id, u32 arg, bool* ok)>;
  void SetKextInvoker(KextInvoker invoker) { kext_invoker_ = std::move(invoker); }

  // Extra syscall handlers (dl / palladium modules add theirs).
  using SyscallHandler = std::function<void(Kernel&, u32 ebx, u32 ecx, u32 edx)>;
  void RegisterSyscall(u32 number, SyscallHandler handler);

 private:
  friend class Scheduler;

  void SetupGdtIdt();
  void SwitchTo(Process& proc);
  void SaveCurrent();
  // A frame returning to the allocator must leave no decoded image on any
  // core (SMP: every vCPU has its own decode cache).
  void EvictFrameEverywhere(u32 frame);

  void HandleSyscall();
  void HandleFault(const StopInfo& stop);
  void KillCurrent(const std::string& reason);

  // One watchdog tick for the user-extension CPU-time limit (Section 4.5.2).
  // Interrupt-driven from the timer IRQ when interrupts are enabled, or from
  // the cooperative slice check otherwise — same logic either way.
  void ExtensionWatchdogTick(Process& proc);
  // Shared IRET body of ReturnFromGate / ReturnFromInterrupt.
  void ResumeFromGateFrame();

  // Built-in syscall implementations.
  void SysExit(u32 code);
  void SysWrite(u32 ptr, u32 len);
  void SysBrk(u32 new_brk);
  void SysMmap(u32 addr, u32 len, u32 prot);
  void SysMunmap(u32 addr, u32 len);
  void SysMprotect(u32 addr, u32 len, u32 prot);
  void SysSigaction(u32 signo, u32 handler);
  void SysSigreturn();
  void SysFork();
  void SysInitPL();
  void SysSetRange(u32 addr, u32 len, u32 ppl);
  void SysSetCallGate(u32 function);

  void InstallSignalTrampoline(Process& proc);
  bool BuildAddressSpace(Process& proc);
  void ReleaseAddressSpace(Process& proc);

  // Page-table editor wired to the CPU's invalidation hook: every mapping
  // edit flushes that page's TLB entry, which also kills the instruction
  // fetch fast path (Tlb::change_count). Use this, not a raw
  // PageTableEditor, for any edit while the machine is live.
  PageTableEditor Editor(u32 cr3);

  // The process slot of the current vCPU (most kernel code runs "on" the
  // trapping core; this is its `current` in the Linux sense).
  Process*& cur() { return current_[machine_.current_cpu_index()]; }

  Machine& machine_;
  Config config_;
  FrameAllocator frames_;
  u32 kernel_page_dir_template_ = 0;  // PDEs >= 3GB shared by all processes

  // Interrupt fabric, one per vCPU (see the Interrupts section above).
  struct CpuIrqFabric {
    InterruptController pic{kVecIrqBase};
    IrqHub hub{pic};
    IntervalTimer timer{pic, kIrqTimer};
  };
  std::vector<std::unique_ptr<CpuIrqFabric>> fabric_;
  bool interrupts_enabled_ = false;
  std::map<u32, IrqHandler> irq_handlers_;
  Scheduler* sched_ = nullptr;
  bool preempt_pending_ = false;
  SmpStats smp_stats_;
  bool stage_remote_ops_ = false;
  mutable std::mutex remote_ops_mu_;           // staging can come off-thread
  std::vector<std::vector<RemoteOp>> staged_remote_;  // one FIFO per vCPU
  obs::FlightRecorder* recorder_ = nullptr;
  obs::CycleProfile* profiler_ = nullptr;

  std::map<Pid, std::unique_ptr<Process>> processes_;
  Pid next_pid_ = 1;
  std::vector<Process*> current_;  // one slot per vCPU

  std::map<u32, HostCallHandler> host_calls_;
  u32 next_host_call_id_ = kHostEntryFirstFree;
  std::map<u32, SyscallHandler> extra_syscalls_;
  FaultHook extension_fault_hook_;
  TimeLimitHook time_limit_hook_;
  KextInvoker kext_invoker_;

  std::string console_;
};

}  // namespace palladium

#endif  // SRC_KERNEL_KERNEL_H_
