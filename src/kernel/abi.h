// The kernel/user ABI: GDT layout, selectors, syscall numbers, signal
// numbers, interrupt vectors, and the fixed virtual-address-space layout of
// Figure 2 in the paper. Assembly programs reference these values via .equ;
// keep them in sync with the table below.
#ifndef SRC_KERNEL_ABI_H_
#define SRC_KERNEL_ABI_H_

#include "src/hw/segment.h"
#include "src/hw/types.h"

namespace palladium {

// --- GDT layout -------------------------------------------------------------
// 0        null
// 1,2      kernel code/data   base=3GB  limit=1GB  DPL0
// 3,4      user code/data     base=0    limit=3GB  DPL3
// 5,6      application code/data (Palladium SPL 2) base=0 limit=3GB DPL2
// 7        kernel-return call gate (kernel extensions -> kernel, DPL1)
// 8..15    reserved
// 16..     dynamically allocated: extension segments, application call gates
inline constexpr u16 kGdtKernelCs = 1;
inline constexpr u16 kGdtKernelDs = 2;
inline constexpr u16 kGdtUserCs = 3;
inline constexpr u16 kGdtUserDs = 4;
inline constexpr u16 kGdtAppCs = 5;
inline constexpr u16 kGdtAppDs = 6;
inline constexpr u16 kGdtKernelReturnGate = 7;
inline constexpr u16 kGdtFirstDynamic = 16;

inline constexpr Selector kKernelCsSel = Selector::FromIndex(kGdtKernelCs, 0);
inline constexpr Selector kKernelDsSel = Selector::FromIndex(kGdtKernelDs, 0);
inline constexpr Selector kUserCsSel = Selector::FromIndex(kGdtUserCs, 3);
inline constexpr Selector kUserDsSel = Selector::FromIndex(kGdtUserDs, 3);
inline constexpr Selector kAppCsSel = Selector::FromIndex(kGdtAppCs, 2);
inline constexpr Selector kAppDsSel = Selector::FromIndex(kGdtAppDs, 2);
inline constexpr Selector kKernelReturnGateSel = Selector::FromIndex(kGdtKernelReturnGate, 1);

// --- Interrupt vectors ------------------------------------------------------
inline constexpr u8 kVecSyscall = 0x80;        // user / app system calls (gate DPL 3)
inline constexpr u8 kVecKernelService = 0x81;  // kernel-extension services (gate DPL 1)
// Hardware IRQs are remapped to 0x20..0x2F (the Linux-on-x86 convention).
inline constexpr u8 kVecIrqBase = 0x20;
inline constexpr u32 kNumIrqVectors = 16;
inline constexpr u32 kIrqTimer = 0;  // interval timer (scheduler + watchdog), per CPU
// IPI lines (SMP): raised on the *target* CPU's local PIC. They sit just
// below the timer in priority and above every device line, matching the
// "IPIs outrank device interrupts" convention: a pending TLB shootdown must
// not wait behind NIC servicing on the target core.
inline constexpr u32 kIrqIpiShootdown = 1;  // TLB/D-TLB shootdown ack (vector 0x21)
inline constexpr u32 kIrqIpiResched = 2;    // reschedule kick (vector 0x22)
inline constexpr u32 kIrqNic = 5;    // network interface RX (per-queue: owning core)
// TX-completion line: the NIC latches it when descriptor DMA finishes (one
// edge per completion batch, not per frame). With multi-queue wiring each
// queue raises the line on its owning core's local PIC, MSI-X style.
inline constexpr u32 kIrqNicTx = 6;

// --- Host entry ids (offsets into the host-call range) ----------------------
inline constexpr u32 kHostEntrySyscall = 0;
inline constexpr u32 kHostEntryKernelService = 1;
inline constexpr u32 kHostEntryKextReturn = 2;
inline constexpr u32 kHostEntryFaultRelay = 3;
inline constexpr u32 kHostEntryFirstFree = 8;
// IRQ gate targets occupy the top of the 256-entry host page, well clear of
// AllocateHostCallId's growth upward from kHostEntryFirstFree.
inline constexpr u32 kHostEntryIrqBase = 224;

// --- System call numbers (Linux-2.0-flavoured + Palladium additions) --------
inline constexpr u32 kSysExit = 1;
inline constexpr u32 kSysFork = 2;
inline constexpr u32 kSysWrite = 4;      // ebx=ptr ecx=len -> console
inline constexpr u32 kSysGetPid = 20;
inline constexpr u32 kSysKill = 37;  // ebx=signo, delivered to self on return
inline constexpr u32 kSysBrk = 45;
inline constexpr u32 kSysMmap = 90;      // ebx=addr(0=any) ecx=len edx=prot
inline constexpr u32 kSysMunmap = 91;
inline constexpr u32 kSysMprotect = 125;
inline constexpr u32 kSysSigaction = 67;   // ebx=signo ecx=handler
inline constexpr u32 kSysSigreturn = 119;
// Palladium (paper Section 4.4.2 / 4.5.2):
inline constexpr u32 kSysInitPL = 200;       // promote to SPL 2, writable pages -> PPL 0
inline constexpr u32 kSysSetRange = 201;     // ebx=addr ecx=len edx=ppl(0|1)
inline constexpr u32 kSysSetCallGate = 202;  // ebx=function -> returns gate selector
inline constexpr u32 kSysInvokeKext = 210;   // ebx=extension function id ecx=arg
// Dynamic loading (the seg_dl* family of Section 4.4.2; the loader logic is
// kernel-assisted in this prototype, standing in for a user-level ld.so):
inline constexpr u32 kSysSegDlopen = 212;    // ebx=name -> handle
inline constexpr u32 kSysSegDlsym = 213;     // ebx=handle ecx=name -> Prepare ptr
inline constexpr u32 kSysDlsym = 214;        // ebx=handle ecx=name -> raw data ptr
inline constexpr u32 kSysSegDlclose = 215;   // ebx=handle
inline constexpr u32 kSysDlopenUnprot = 216; // unprotected dlopen (baseline)
inline constexpr u32 kSysExposeService = 217; // ebx=name ecx=fn -> gate selector
// Packet dataplane (NIC RX -> protected filter -> per-process queues):
inline constexpr u32 kSysPktRecv = 220;  // ebx=buf ecx=cap edx=flags(1=nonblock) -> len
inline constexpr u32 kSysPktSend = 221;  // ebx=buf ecx=len -> len (via the NIC TX ring)
inline constexpr u32 kSysYield = 222;    // voluntarily end the scheduling slice
// Batched packet I/O (recvmmsg/sendmmsg-style): one gate crossing moves a
// vector of frames. Buffer layout: repeated records of [u32 len][len bytes],
// each record padded to 4-byte alignment.
inline constexpr u32 kSysPktRecvM = 223;  // ebx=buf ecx=cap edx=flags -> total bytes
inline constexpr u32 kSysPktSendM = 224;  // ebx=buf ecx=total bytes -> frames sent

// Errno-style return values (negative in EAX, as in Linux).
inline constexpr u32 kErrPerm = static_cast<u32>(-1);
inline constexpr u32 kErrNoEnt = static_cast<u32>(-2);
inline constexpr u32 kErrFault = static_cast<u32>(-14);
inline constexpr u32 kErrInval = static_cast<u32>(-22);
inline constexpr u32 kErrNoMem = static_cast<u32>(-12);
inline constexpr u32 kErrAgain = static_cast<u32>(-11);     // pkt_recv: queue empty (nonblock)
inline constexpr u32 kErrShutdown = static_cast<u32>(-108); // pkt_recv: dataplane drained

// --- Signals ---------------------------------------------------------------
inline constexpr u32 kSigSegv = 11;
inline constexpr u32 kSigXcpu = 24;  // extension ran past its time limit
inline constexpr u32 kNumSignals = 32;

// --- Memory protection bits for mmap/mprotect ------------------------------
inline constexpr u32 kProtRead = 1;
inline constexpr u32 kProtWrite = 2;
inline constexpr u32 kProtExec = 4;

// --- Virtual address space layout (Figure 2) --------------------------------
inline constexpr u32 kUserTextBase = 0x08048000;   // "a little greater than 0"
inline constexpr u32 kSharedLibBase = 0x40000000;  // middle of the 0-3GB range
inline constexpr u32 kUserStackTop = 0xBFFFE000;   // below 3 GB
inline constexpr u32 kUserStackSize = 64 * kPageSize;
inline constexpr u32 kSignalTrampolinePage = 0xBFFFE000;  // one PPL1 RO page
inline constexpr u32 kMmapSearchBase = 0x50000000;

// Kernel-side layout (all linear addresses; kernel segment base is 3 GB so
// kernel-segment offsets are linear - kKernelBase).
inline constexpr u32 kHostCallLinearBase = kKernelBase;        // 4 KB of host stubs
inline constexpr u32 kKernelStackSpan = 2 * kPageSize;         // per-process
inline constexpr u32 kKextRegionBase = 0xC8000000;             // extension segments live here
inline constexpr u32 kKextRegionSpan = 0x08000000;

// --- Kernel services exposed to kernel extensions (via INT 0x81) -----------
inline constexpr u32 kKsvcPrintk = 1;     // ebx=segment-relative ptr ecx=len
inline constexpr u32 kKsvcGetCycles = 2;  // -> low 32 bits of the cycle counter
inline constexpr u32 kKsvcPktOutput = 3;  // router-style "emit packet" counter

// --- Kernel software cost model (cycles charged for host-side kernel work) --
// Calibrated against the measurements quoted in Section 5.1 of the paper.
struct KernelCosts {
  u32 syscall_dispatch = 120;        // gate already charged by hardware model
  u32 page_fault_service = 350;      // demand-paging a fresh page
  u32 sigsegv_delivery = 3100;       // + in-sim frame pushes => ~3,325 total
  u32 kext_gp_processing = 1020;     // abort path for kernel extensions
  u32 ppl_mark_startup = 3400;       // set_range: fixed cost ("3000 to 5000")
  u32 ppl_mark_per_page = 45;        // set_range: per page marked
  u32 fork_base = 20000;
  u32 exec_base = 40000;
  u32 context_switch = 500;
  // Interrupt path: kernel-side IRQ prologue/epilogue around the handler
  // (the gate and IRET themselves are charged by the hardware model).
  u32 irq_dispatch = 290;
  // Packet syscalls: fixed dispatch work plus the copy loop.
  u32 pkt_syscall_base = 380;
  u32 pkt_copy_per_byte = 1;
  // Batched packet syscalls: the gate + dispatch + base are paid once per
  // call; each additional frame in the vector costs only the queue/ring
  // bookkeeping plus its copy loop.
  u32 pkt_msg_overhead = 48;
  // NAPI poll loop: driver cost per poll iteration (ring scan, IRQ
  // mask/unmask bookkeeping) and per frame collected from the ring.
  u32 napi_poll = 80;
  u32 napi_per_frame = 16;
};

}  // namespace palladium

#endif  // SRC_KERNEL_ABI_H_
