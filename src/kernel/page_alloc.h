// Physical frame allocator: a simple free-list over the machine's physical
// memory, excluding the low region reserved for kernel text/stub addresses.
#ifndef SRC_KERNEL_PAGE_ALLOC_H_
#define SRC_KERNEL_PAGE_ALLOC_H_

#include <vector>

#include "src/hw/physical_memory.h"
#include "src/hw/types.h"

namespace palladium {

class FrameAllocator {
 public:
  // Manages frames in [first_frame_addr, pm.size()).
  FrameAllocator(PhysicalMemory& pm, u32 first_frame_addr);

  // Returns the physical base of a zeroed 4 KB frame, or 0 on exhaustion
  // (frame 0 is never handed out).
  u32 Alloc();

  void Free(u32 frame_addr);

  u32 free_frames() const { return static_cast<u32>(free_list_.size()); }
  u32 total_frames() const { return total_; }

 private:
  PhysicalMemory& pm_;
  std::vector<u32> free_list_;
  u32 total_ = 0;
};

}  // namespace palladium

#endif  // SRC_KERNEL_PAGE_ALLOC_H_
