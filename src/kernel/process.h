// Process model: virtual-memory areas, page directory, saved CPU context,
// signal state, and the Palladium-specific taskSPL field (Section 4.5.2).
#ifndef SRC_KERNEL_PROCESS_H_
#define SRC_KERNEL_PROCESS_H_

#include <array>
#include <deque>
#include <set>
#include <string>
#include <vector>

#include "src/hw/cpu.h"
#include "src/kernel/abi.h"

namespace palladium {

using Pid = u32;

enum class ProcessState : u8 { kRunnable, kBlocked, kExited, kKilled };

// One mapped region of the user address space.
struct VmArea {
  u32 start = 0;  // page-aligned
  u32 end = 0;    // exclusive, page-aligned
  u32 prot = kProtRead | kProtWrite;
  // Palladium: area explicitly exposed to extensions via set_range; its
  // pages stay at PPL 1 even though they are writable.
  bool shared_ppl1 = false;
  const char* tag = "";

  bool Contains(u32 addr) const { return addr >= start && addr < end; }
};

struct SignalState {
  std::array<u32, kNumSignals> handlers{};  // 0 = default (kill)
  bool in_handler = false;
  CpuContext saved_context;  // context to restore on sigreturn
  u64 delivered_count = 0;
  u32 last_signal = 0;
};

struct Process {
  Pid pid = 0;
  ProcessState state = ProcessState::kRunnable;
  i32 exit_code = 0;
  std::string kill_reason;

  u32 cr3 = 0;  // page-directory frame
  std::vector<VmArea> areas;
  u32 brk = 0;          // heap break (linear)
  u32 heap_start = 0;
  u32 mmap_next = kMmapSearchBase;

  // Palladium state.
  u8 task_spl = 3;         // logical SPL; 2 after init_PL
  bool ppl_policy = false; // writable pages get PPL 0 on fault
  u32 xmalloc_brk = 0;     // extension heap break (inside an extension area)
  std::set<u32> ppl1_pages;  // pages pinned at PPL 1 by set_range
  u32 pl2_stack_top = 0;     // TSS inner stack for SPL3 -> SPL2 transitions

  // Kernel stack (direct-mapped): esp0 is a *kernel-segment offset*.
  u32 kernel_stack_frame = 0;
  u32 esp0 = 0;

  // Scheduler bookkeeping (SMP): the vCPU whose run queue owns this process
  // (wakeups go home; stealing migrates it), and whether it currently sits
  // in a ready queue (guards against double-enqueue).
  u32 home_cpu = 0;
  bool sched_queued = false;

  CpuContext context;  // saved user context while not running
  SignalState signals;

  // Cycle bookkeeping for the extension time limit: consecutive cycles spent
  // at SPL 3 while task_spl == 2 (i.e. inside a user extension).
  u64 ext_cycle_start = 0;
  bool in_extension = false;

  // Packet delivery queue (filled by the dataplane from NIC RX interrupts,
  // drained by sys_pkt_recv). waiting_packet marks a process blocked in
  // pkt_recv so a delivery wakes exactly the right sleeper.
  std::deque<std::vector<u8>> pkt_queue;
  u32 pkt_queue_limit = 64;
  bool waiting_packet = false;
  u64 pkts_delivered = 0;
  u64 pkts_dropped = 0;

  VmArea* FindArea(u32 addr) {
    for (VmArea& a : areas) {
      if (a.Contains(addr)) return &a;
    }
    return nullptr;
  }
  const VmArea* FindArea(u32 addr) const {
    for (const VmArea& a : areas) {
      if (a.Contains(addr)) return &a;
    }
    return nullptr;
  }
};

}  // namespace palladium

#endif  // SRC_KERNEL_PROCESS_H_
