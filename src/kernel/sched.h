// Preemptive scheduler over the kernel's processes, driven by the per-CPU
// hardware interval timers: a timer IRQ whose slice has expired context-
// switches to the next runnable process on that vCPU, blocking syscalls park
// the current process until a device interrupt wakes it, and idle vCPUs
// fast-forward to the next device event when everything sleeps.
//
// SMP: one ready queue per vCPU with work stealing (an idle vCPU takes from
// the back of the longest sibling queue). RunAll is the machine's
// deterministic interleaver: it always advances the vCPU with the smallest
// cycle counter and lets it run at most `smp_quantum_cycles` past the
// second-smallest before rotating — the same min-cycle retire-boundary
// discipline as SmpInterleaver (src/hw/smp.h), plus scheduling. A vCPU with
// no current process still services its interrupt fabric (a parked vCPU 0
// keeps draining NIC RX while workers run elsewhere), and a process woken
// by core A never starts on core B earlier than A's wake point (its queue
// stamp bumps the idle core's clock), so cycle accounting is causal.
// On a 1-vCPU machine all of this degenerates to the PR 3 behavior.
//
// Constructing a Scheduler enables hardware timer interrupts on the kernel
// (preemption needs a timer) and registers itself as the kernel's scheduler.
#ifndef SRC_KERNEL_SCHED_H_
#define SRC_KERNEL_SCHED_H_

#include <deque>
#include <functional>
#include <vector>

#include "src/kernel/kernel.h"

namespace palladium {

class Scheduler {
 public:
  struct Config {
    // A process runs at most this many cycles per slice before a timer tick
    // rotates it to the back of its vCPU's ready queue (if anyone waits).
    u64 slice_cycles = 200'000;
    // SMP interleave granularity: a running vCPU may get at most this far
    // ahead of the laggard vCPU before control rotates. Smaller = finer
    // interleave (more host overhead); cross-CPU event visibility latency
    // is bounded by it. Irrelevant on a 1-vCPU machine.
    u64 smp_quantum_cycles = 4'000;
    // An idle vCPU steals from the back of the longest sibling ready queue.
    bool work_stealing = true;
  };

  struct Stats {
    u64 context_switches = 0;  // times a process was put on a CPU
    u64 preemptions = 0;       // involuntary slice-expiry switches
    u64 yields_or_blocks = 0;  // voluntary departures (yield, blocking syscall)
    u64 timer_ticks = 0;       // timer IRQs observed while scheduling
    u64 idle_jumps = 0;        // machine-idle fast-forwards to a device event
    u64 idle_cycles = 0;       // cycles vCPUs skipped while parked (per-core idle)
    u64 steals = 0;            // cross-CPU work-steals
  };
  struct CpuStats {
    u64 context_switches = 0;
    u64 preemptions = 0;
    u64 steals = 0;  // processes this vCPU stole from a sibling
  };

  struct RunAllResult {
    u32 exited = 0;
    u32 killed = 0;
    u32 blocked = 0;           // still parked when RunAll returned
    bool budget_exhausted = false;
    bool deadlocked = false;   // everyone blocked, no device event, no idle-hook progress
    u64 cycles = 0;            // simulated cycles consumed (max over vCPUs)
  };

  explicit Scheduler(Kernel& kernel);
  Scheduler(Kernel& kernel, const Config& config);
  ~Scheduler();

  // Adds a runnable process, assigning it a home vCPU round-robin (or
  // explicitly, for tests that pin placement).
  void AddProcess(Pid pid);
  void AddProcess(Pid pid, u32 home_cpu);

  // Runs every managed process to completion (exit/kill), or until the cycle
  // budget is exhausted (per-vCPU counters measured from the entry maximum),
  // or until the system deadlocks (every live process blocked with no wakeup
  // source in sight).
  RunAllResult RunAll(u64 cycle_budget = ~0ull);

  // Kernel callbacks (run on the machine's current vCPU).
  bool OnTimerTick();    // true => preempt the current process
  void OnWake(Pid pid);  // a blocked process became runnable: queue it home
  // Applies a wake OnWake staged for the epoch barrier (threaded SMP mode);
  // called only from Kernel::DrainRemoteOps in the quiesced serial window.
  void ApplyStagedWake(u32 target_cpu, Pid pid, u64 stamp);
  void OnYield() { yield_pending_ = true; }  // sys_yield: voluntary departure

  // Consulted when every process is blocked and no device has a scheduled
  // event: return true after creating new work (e.g. the harness decides the
  // packet source is drained and shuts the dataplane down, waking sleepers).
  using IdleHook = std::function<bool()>;
  void set_idle_hook(IdleHook hook) { idle_hook_ = std::move(hook); }

  const Stats& stats() const { return stats_; }
  const CpuStats& cpu_stats(u32 cpu_index) const { return cpus_[cpu_index].stats; }
  const Config& config() const { return config_; }

 private:
  struct ReadyEntry {
    Pid pid = 0;
    u64 stamp = 0;  // wake/enqueue cycle on the enqueuing vCPU (causality)
  };
  struct PerCpu {
    std::deque<ReadyEntry> ready;
    u64 slice_start = 0;
    CpuStats stats;
  };

  // Puts a process on vCPU `c`: own queue, else steal, else adopt a stray
  // runnable. Returns false when there is nothing to run.
  bool Dispatch(u32 c, u64 deadline);
  Pid PopRunnable(std::deque<ReadyEntry>& queue, bool from_back, u64* stamp);
  void Enqueue(u32 c, Pid pid, u64 stamp, bool front);
  // Advances a parked vCPU to `event_cycle` and services its fabric.
  void ServiceParked(u32 c, u64 event_cycle, bool machine_idle);

  Kernel& kernel_;
  Config config_;
  std::vector<PerCpu> cpus_;
  u32 next_home_ = 0;
  bool yield_pending_ = false;
  Stats stats_;
  IdleHook idle_hook_;
};

}  // namespace palladium

#endif  // SRC_KERNEL_SCHED_H_
