// Round-robin preemptive scheduler over the kernel's processes, driven by
// the hardware interval timer: a timer IRQ whose slice has expired context-
// switches to the next runnable process, blocking syscalls park the current
// process until a device interrupt wakes it, and an idle loop fast-forwards
// the cycle counter to the next device event when everything sleeps.
//
// Constructing a Scheduler enables hardware timer interrupts on the kernel
// (preemption needs a timer) and registers itself as the kernel's scheduler.
#ifndef SRC_KERNEL_SCHED_H_
#define SRC_KERNEL_SCHED_H_

#include <deque>
#include <functional>

#include "src/kernel/kernel.h"

namespace palladium {

class Scheduler {
 public:
  struct Config {
    // A process runs at most this many cycles per slice before a timer tick
    // rotates it to the back of the ready queue (if anyone else is waiting).
    u64 slice_cycles = 200'000;
  };

  struct Stats {
    u64 context_switches = 0;  // times a process was put on the CPU
    u64 preemptions = 0;       // involuntary slice-expiry switches
    u64 yields_or_blocks = 0;  // voluntary departures (yield, blocking syscall)
    u64 timer_ticks = 0;       // timer IRQs observed while scheduling
    u64 idle_jumps = 0;        // idle fast-forwards to the next device event
    u64 idle_cycles = 0;       // simulated cycles skipped while idle
  };

  struct RunAllResult {
    u32 exited = 0;
    u32 killed = 0;
    u32 blocked = 0;           // still parked when RunAll returned
    bool budget_exhausted = false;
    bool deadlocked = false;   // everyone blocked, no device event, no idle-hook progress
    u64 cycles = 0;            // simulated cycles consumed by this RunAll
  };

  explicit Scheduler(Kernel& kernel);
  Scheduler(Kernel& kernel, const Config& config);
  ~Scheduler();

  // Adds a runnable process to the ready queue.
  void AddProcess(Pid pid);

  // Runs every managed process to completion (exit/kill), or until the cycle
  // budget is exhausted, or until the system deadlocks (every live process
  // blocked with no wakeup source in sight).
  RunAllResult RunAll(u64 cycle_budget = ~0ull);

  // Kernel callbacks.
  bool OnTimerTick();    // true => preempt the current process
  void OnWake(Pid pid);  // a blocked process became runnable
  void OnYield() { yield_pending_ = true; }  // sys_yield: voluntary departure

  // Consulted when every process is blocked and no device has a scheduled
  // event: return true after creating new work (e.g. the harness decides the
  // packet source is drained and shuts the dataplane down, waking sleepers).
  using IdleHook = std::function<bool()>;
  void set_idle_hook(IdleHook hook) { idle_hook_ = std::move(hook); }

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }

 private:
  Pid PickNext();

  Kernel& kernel_;
  Config config_;
  std::deque<Pid> ready_;
  u64 slice_start_ = 0;
  bool yield_pending_ = false;
  Stats stats_;
  IdleHook idle_hook_;
};

}  // namespace palladium

#endif  // SRC_KERNEL_SCHED_H_
