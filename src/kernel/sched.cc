#include "src/kernel/sched.h"

#include <algorithm>

#include "src/obs/profile.h"

namespace palladium {

Scheduler::Scheduler(Kernel& kernel) : Scheduler(kernel, Config{}) {}

Scheduler::Scheduler(Kernel& kernel, const Config& config)
    : kernel_(kernel), config_(config), cpus_(kernel.machine().num_cpus()) {
  kernel_.set_scheduler(this);
  kernel_.EnableTimerInterrupts();
}

Scheduler::~Scheduler() {
  if (kernel_.scheduler() == this) kernel_.set_scheduler(nullptr);
}

void Scheduler::AddProcess(Pid pid) {
  AddProcess(pid, next_home_++ % static_cast<u32>(cpus_.size()));
}

void Scheduler::AddProcess(Pid pid, u32 home_cpu) {
  if (home_cpu >= cpus_.size()) home_cpu = 0;
  Process* proc = kernel_.process(pid);
  if (proc != nullptr) {
    if (proc->sched_queued) return;
    proc->home_cpu = home_cpu;
  }
  Enqueue(home_cpu, pid, kernel_.cpu().cycles(), /*front=*/false);
}

void Scheduler::Enqueue(u32 c, Pid pid, u64 stamp, bool front) {
  if (front) {
    cpus_[c].ready.push_front(ReadyEntry{pid, stamp});
  } else {
    cpus_[c].ready.push_back(ReadyEntry{pid, stamp});
  }
  Process* proc = kernel_.process(pid);
  if (proc != nullptr) proc->sched_queued = true;
}

bool Scheduler::OnTimerTick() {
  ++stats_.timer_ticks;
  const u32 c = kernel_.machine().current_cpu_index();
  return kernel_.cpu().cycles() - cpus_[c].slice_start >= config_.slice_cycles &&
         !cpus_[c].ready.empty();
}

void Scheduler::OnWake(Pid pid) {
  Process* proc = kernel_.process(pid);
  if (proc != nullptr && proc->sched_queued) return;
  const u32 home =
      proc != nullptr && proc->home_cpu < cpus_.size() ? proc->home_cpu : 0;
  const u32 cur_cpu = kernel_.machine().current_cpu_index();
  if (kernel_.stage_remote_ops() && home != cur_cpu) {
    // Threaded mode: a cross-CPU wakeup must not touch the sibling's ready
    // queue mid-epoch. Stage it (with the waker's stamp, preserving
    // causality); the barrier drain enqueues it and kicks the target with a
    // resched IPI if it is busy — delivery no later than the next barrier.
    if (proc != nullptr) proc->sched_queued = true;  // dedupe repeat wakes
    kernel_.StageRemoteOp(
        home, Kernel::RemoteOp{Kernel::RemoteOp::Kind::kWake, pid, 0,
                               kernel_.cpu().cycles()});
    return;
  }
  // Stamp with the waking vCPU's clock: the wakee must not start in the past.
  Enqueue(home, pid, kernel_.cpu().cycles(), /*front=*/false);
  // Cross-CPU wakeup onto a busy core: kick it with a reschedule IPI so the
  // wakee is considered at the target's next retire boundary instead of
  // waiting out the running process's slice. The waker's own core needs no
  // kick (it re-evaluates on return), and an idle core is dispatched by the
  // RunAll loop directly.
  if (home != cur_cpu && kernel_.current(home) != nullptr) {
    kernel_.SendIpi(home, kIrqIpiResched);
  }
}

void Scheduler::ApplyStagedWake(u32 target_cpu, Pid pid, u64 stamp) {
  // Barrier-drain half of the staged OnWake above: runs in the quiesced
  // serial window with current_cpu == target (Kernel::DrainRemoteOps), so
  // the direct enqueue and the busy-core resched kick are safe again.
  Enqueue(target_cpu, pid, stamp, /*front=*/false);
  if (kernel_.current(target_cpu) != nullptr) {
    kernel_.SendIpi(target_cpu, kIrqIpiResched);
  }
}

Pid Scheduler::PopRunnable(std::deque<ReadyEntry>& queue, bool from_back, u64* stamp) {
  while (!queue.empty()) {
    ReadyEntry e;
    if (from_back) {
      e = queue.back();
      queue.pop_back();
    } else {
      e = queue.front();
      queue.pop_front();
    }
    Process* proc = kernel_.process(e.pid);
    if (proc != nullptr) proc->sched_queued = false;
    if (proc != nullptr && proc->state == ProcessState::kRunnable) {
      *stamp = e.stamp;
      return e.pid;
    }
    // Exited, killed, or a stale entry: drop it.
  }
  return 0;
}

bool Scheduler::Dispatch(u32 c, u64 deadline) {
  Machine& m = kernel_.machine();
  if (m.cpu(c).cycles() >= deadline) return false;  // this vCPU is out of budget
  u64 stamp = 0;
  Pid pid = PopRunnable(cpus_[c].ready, /*from_back=*/false, &stamp);
  if (pid == 0 && config_.work_stealing && cpus_.size() > 1) {
    // Steal from the back of the longest sibling queue.
    u32 victim = static_cast<u32>(cpus_.size());
    size_t best = 0;
    for (u32 v = 0; v < cpus_.size(); ++v) {
      if (v == c || cpus_[v].ready.size() <= best) continue;
      best = cpus_[v].ready.size();
      victim = v;
    }
    if (victim != cpus_.size()) {
      pid = PopRunnable(cpus_[victim].ready, /*from_back=*/true, &stamp);
      if (pid != 0) {
        ++stats_.steals;
        ++cpus_[c].stats.steals;
      }
    }
  }
  if (pid == 0) {
    // Adopt a stray runnable (a fork child, or a process woken outside
    // OnWake): it joins this vCPU at the current frontier. The scan is
    // O(processes × vCPUs) but runs only when this vCPU found nothing to
    // run or steal, and process counts in this kernel are tens at most;
    // keeping it here (rather than only in the machine-idle path) is what
    // lets a fork child start while its parent keeps a sibling core busy.
    for (const auto& [p, proc] : kernel_.processes_) {
      if (proc->state != ProcessState::kRunnable || proc->sched_queued) continue;
      bool is_current = false;
      for (u32 cc = 0; cc < cpus_.size(); ++cc) {
        if (kernel_.current(cc) == proc.get()) is_current = true;
      }
      if (is_current) continue;
      pid = p;
      stamp = kernel_.cpu().cycles();
      break;
    }
    if (pid == 0) return false;
  }

  Process* proc = kernel_.process(pid);
  proc->home_cpu = c;
  Cpu& cpu = m.cpu(c);
  // Causality: a process enqueued at cycle S on another core cannot start
  // before S on this one; an idle core's lagging clock snaps forward.
  if (stamp > cpu.cycles()) {
    obs::CycleProfile* prof = kernel_.profiler();
    if (prof != nullptr && prof->enabled()) {
      // The skipped span is idle time on this core, not kernel work.
      prof->Set(c, cpu.cycles(), cpu.tlb_stats().misses, obs::Category::kIdle);
      cpu.set_cycles(stamp);
      prof->Set(c, cpu.cycles(), cpu.tlb_stats().misses, obs::Category::kKernel);
    } else {
      cpu.set_cycles(stamp);
    }
  }
  m.set_current_cpu(c);
  kernel_.SwitchTo(*proc);
  ++stats_.context_switches;
  ++cpus_[c].stats.context_switches;
  cpus_[c].slice_start = cpu.cycles();
  return true;
}

void Scheduler::ServiceParked(u32 c, u64 event_cycle, bool machine_idle) {
  Machine& m = kernel_.machine();
  m.set_current_cpu(c);
  Cpu& cpu = m.cpu(c);
  if (event_cycle > cpu.cycles()) {
    // The span this vCPU skips was idle time on this core whether or not
    // the rest of the machine was busy — counting only whole-machine idle
    // under-reported idle on any loaded SMP run (and reported 0 for a
    // saturated N=1 run that still parked between bursts).
    stats_.idle_cycles += event_cycle - cpu.cycles();
    if (machine_idle) ++stats_.idle_jumps;
    obs::CycleProfile* prof = kernel_.profiler();
    if (prof != nullptr && prof->enabled()) {
      prof->Set(c, cpu.cycles(), cpu.tlb_stats().misses, obs::Category::kIdle);
      cpu.set_cycles(event_cycle);
      prof->Set(c, cpu.cycles(), cpu.tlb_stats().misses, obs::Category::kKernel);
    } else {
      cpu.set_cycles(event_cycle);
    }
  }
  kernel_.ServicePendingIrqsHostSide();
}

Scheduler::RunAllResult Scheduler::RunAll(u64 cycle_budget) {
  Machine& m = kernel_.machine();
  const u32 n = static_cast<u32>(cpus_.size());
  u64 start_max = 0;
  for (u32 c = 0; c < n; ++c) start_max = std::max(start_max, m.cpu(c).cycles());
  const u64 deadline = cycle_budget == ~0ull ? ~0ull : start_max + cycle_budget;
  RunAllResult result;
  obs::CycleProfile* prof = kernel_.profiler();
  if (prof != nullptr && prof->enabled()) {
    for (u32 c = 0; c < n; ++c) {
      prof->Begin(c, m.cpu(c).cycles(), m.cpu(c).tlb_stats().misses,
                  obs::Category::kKernel);
    }
  }

  for (;;) {
    // (1) Hand work to idle vCPUs: own queue, steal, adopt.
    for (u32 c = 0; c < n; ++c) {
      if (kernel_.current(c) == nullptr) Dispatch(c, deadline);
    }

    // (2) Survey. Active vCPUs: the frontier (minimum counter) runs next.
    // Parked vCPUs: the earliest interrupt-fabric event (an already-latched
    // deliverable line counts as "now") competes with the frontier.
    u32 run_cpu = n;
    u64 min_active = ~0ull, second_active = ~0ull;
    u32 ev_cpu = n;
    u64 ev_cycle = ~0ull;
    for (u32 c = 0; c < n; ++c) {
      if (kernel_.current(c) != nullptr) {
        const u64 cy = m.cpu(c).cycles();
        if (run_cpu == n || cy < min_active) {
          second_active = min_active;
          min_active = cy;
          run_cpu = c;
        } else {
          second_active = std::min(second_active, cy);
        }
      } else {
        u64 ev;
        if (kernel_.pic(c).HasDeliverable()) {
          ev = m.cpu(c).cycles();
        } else {
          // This vCPU's own free-running timer cannot wake anybody; only
          // real device events (NIC arrivals, ...) count as wakeup sources.
          ev = kernel_.irq_hub(c).NextDeviceEventExcept(&kernel_.timer(c));
          if (ev == IrqDevice::kIdle) continue;
        }
        if (ev < ev_cycle) {
          ev_cycle = ev;
          ev_cpu = c;
        }
      }
    }
    const bool have_active = run_cpu != n;
    const bool have_event = ev_cpu != n && ev_cycle < deadline;

    if (!have_active) {
      if (have_event) {
        ServiceParked(ev_cpu, ev_cycle, /*machine_idle=*/true);
        continue;
      }
      if (result.budget_exhausted) break;  // every vCPU ran out of budget
      bool any_blocked = false, any_runnable = false;
      for (const auto& [p, proc] : kernel_.processes_) {
        (void)p;
        if (proc->state == ProcessState::kBlocked) any_blocked = true;
        if (proc->state == ProcessState::kRunnable) any_runnable = true;
      }
      if (any_runnable) {
        // Nothing active and nothing dispatchable, yet a runnable process
        // exists: Dispatch refused it because every vCPU is out of budget
        // (e.g. an event service charged a clock past the deadline after
        // waking a sleeper). That is budget exhaustion, not completion.
        result.budget_exhausted = true;
        break;
      }
      if (!any_blocked) break;  // everything has finished
      if (ev_cpu != n) {
        // A wakeup source exists but lies beyond the budget horizon.
        result.budget_exhausted = true;
        break;
      }
      if (idle_hook_ && idle_hook_()) continue;
      result.deadlocked = true;
      break;
    }

    // (3) A parked vCPU's event at or before the frontier is serviced first
    // (its NIC drain / IPI ack happens "while" the others compute).
    if (have_event && ev_cycle <= min_active) {
      ServiceParked(ev_cpu, ev_cycle, /*machine_idle=*/false);
      continue;
    }

    // (4) Run the frontier vCPU until it stops being the laggard (bounded
    // by the interleave quantum), the next parked event, or the deadline.
    m.set_current_cpu(run_cpu);
    Cpu& cpu = m.cpu(run_cpu);
    u64 stop_at = deadline;
    if (second_active != ~0ull) {
      stop_at = std::min(stop_at, second_active + config_.smp_quantum_cycles);
    }
    if (have_event) stop_at = std::min(stop_at, ev_cycle + 1);
    if (stop_at <= min_active) stop_at = min_active + 1;

    if (prof != nullptr && prof->enabled()) {
      prof->Set(run_cpu, cpu.cycles(), cpu.tlb_stats().misses,
                obs::Category::kUser);
    }
    StopInfo stop = cpu.Run(stop_at);
    if (prof != nullptr && prof->enabled()) {
      prof->Set(run_cpu, cpu.cycles(), cpu.tlb_stats().misses,
                obs::Category::kKernel);
    }
    if (stop.reason == StopReason::kCycleLimit) {
      if (cpu.cycles() >= deadline) {
        const Pid pid = kernel_.current(run_cpu)->pid;
        kernel_.SaveCurrent();
        kernel_.current_[run_cpu] = nullptr;
        Enqueue(run_cpu, pid, cpu.cycles(), /*front=*/true);  // resumes first
        result.budget_exhausted = true;
      }
      continue;  // interleave rotation
    }

    const Pid pid = kernel_.current(run_cpu)->pid;
    const StopAction action = kernel_.DispatchStop(stop);
    switch (action) {
      case StopAction::kContinue:
        continue;  // the process stays resident on this vCPU
      case StopAction::kPreempt:
        kernel_.SaveCurrent();
        kernel_.current_[run_cpu] = nullptr;
        Enqueue(run_cpu, pid, cpu.cycles(), /*front=*/false);
        // Distinguish a voluntary sys_yield from an involuntary slice-expiry
        // preemption in the stats (both arrive here as kPreempt).
        if (yield_pending_) {
          yield_pending_ = false;
          ++stats_.yields_or_blocks;
        } else {
          ++stats_.preemptions;
          ++cpus_[run_cpu].stats.preemptions;
        }
        break;
      case StopAction::kBlocked:
        // Context was saved by BlockCurrentForRestart; a wake re-queues it.
        kernel_.current_[run_cpu] = nullptr;
        ++stats_.yields_or_blocks;
        break;
      case StopAction::kTerminated:
        kernel_.current_[run_cpu] = nullptr;
        break;
    }
  }

  if (prof != nullptr && prof->enabled()) {
    for (u32 c = 0; c < n; ++c) {
      prof->Finish(c, m.cpu(c).cycles(), m.cpu(c).tlb_stats().misses);
    }
  }

  for (const auto& [p, proc] : kernel_.processes_) {
    (void)p;
    switch (proc->state) {
      case ProcessState::kExited:
        ++result.exited;
        break;
      case ProcessState::kKilled:
        ++result.killed;
        break;
      case ProcessState::kBlocked:
        ++result.blocked;
        break;
      case ProcessState::kRunnable:
        break;
    }
  }
  u64 end_max = 0;
  for (u32 c = 0; c < n; ++c) end_max = std::max(end_max, m.cpu(c).cycles());
  result.cycles = end_max - start_max;
  return result;
}

}  // namespace palladium
