#include "src/kernel/sched.h"

namespace palladium {

Scheduler::Scheduler(Kernel& kernel) : Scheduler(kernel, Config{}) {}

Scheduler::Scheduler(Kernel& kernel, const Config& config) : kernel_(kernel), config_(config) {
  kernel_.set_scheduler(this);
  kernel_.EnableTimerInterrupts();
}

Scheduler::~Scheduler() {
  if (kernel_.scheduler() == this) kernel_.set_scheduler(nullptr);
}

void Scheduler::AddProcess(Pid pid) { ready_.push_back(pid); }

bool Scheduler::OnTimerTick() {
  ++stats_.timer_ticks;
  return kernel_.cpu().cycles() - slice_start_ >= config_.slice_cycles && !ready_.empty();
}

void Scheduler::OnWake(Pid pid) { ready_.push_back(pid); }

Pid Scheduler::PickNext() {
  while (!ready_.empty()) {
    const Pid pid = ready_.front();
    ready_.pop_front();
    Process* proc = kernel_.process(pid);
    if (proc != nullptr && proc->state == ProcessState::kRunnable) return pid;
    // Exited, killed, or a stale duplicate entry: drop it.
  }
  return 0;
}

Scheduler::RunAllResult Scheduler::RunAll(u64 cycle_budget) {
  Cpu& cpu = kernel_.cpu();
  const u64 start_cycles = cpu.cycles();
  const u64 deadline = cycle_budget == ~0ull ? ~0ull : start_cycles + cycle_budget;
  RunAllResult result;

  for (;;) {
    if (cpu.cycles() >= deadline) {
      result.budget_exhausted = true;
      break;
    }
    const Pid pid = PickNext();
    if (pid == 0) {
      // Nobody runnable. If anyone is blocked, idle until the next device
      // event can wake them; otherwise everything has finished.
      bool any_blocked = false;
      for (const auto& [p, proc] : kernel_.processes_) {
        if (proc->state == ProcessState::kBlocked) any_blocked = true;
        if (proc->state == ProcessState::kRunnable) {
          // A process someone woke outside AddProcess/OnWake: adopt it.
          ready_.push_back(p);
        }
      }
      if (!ready_.empty()) continue;
      if (!any_blocked) break;
      // An IRQ already latched in the PIC is a wakeup source too (a handler
      // or syscall may have raised a line just before the last process
      // blocked): service it before looking at future device events.
      if (kernel_.pic().HasDeliverable()) {
        kernel_.ServicePendingIrqsHostSide();
        continue;
      }
      // The kernel's own free-running timer cannot wake a blocked process;
      // only real device events (NIC arrivals, ...) count as wakeup sources.
      const u64 event = kernel_.irq_hub().NextDeviceEventExcept(&kernel_.timer());
      if (event == IrqDevice::kIdle) {
        if (idle_hook_ && idle_hook_()) continue;
        result.deadlocked = true;
        break;
      }
      if (event >= deadline) {
        result.budget_exhausted = true;
        break;
      }
      if (event > cpu.cycles()) {
        stats_.idle_cycles += event - cpu.cycles();
        cpu.set_cycles(event);
        ++stats_.idle_jumps;
      }
      kernel_.ServicePendingIrqsHostSide();
      continue;
    }

    Process* proc = kernel_.process(pid);
    kernel_.SwitchTo(*proc);
    ++stats_.context_switches;
    slice_start_ = cpu.cycles();

    StopAction action = StopAction::kContinue;
    bool hit_deadline = false;
    for (;;) {
      StopInfo stop = cpu.Run(deadline);
      if (stop.reason == StopReason::kCycleLimit) {
        hit_deadline = true;
        break;
      }
      action = kernel_.DispatchStop(stop);
      if (action != StopAction::kContinue) break;
    }

    if (hit_deadline) {
      kernel_.SaveCurrent();
      kernel_.current_ = nullptr;
      ready_.push_front(pid);  // resumes first if the caller runs again
      result.budget_exhausted = true;
      break;
    }
    switch (action) {
      case StopAction::kPreempt:
        kernel_.SaveCurrent();
        ready_.push_back(pid);
        // Distinguish a voluntary sys_yield from an involuntary slice-expiry
        // preemption in the stats (both arrive here as kPreempt).
        if (yield_pending_) {
          yield_pending_ = false;
          ++stats_.yields_or_blocks;
        } else {
          ++stats_.preemptions;
        }
        break;
      case StopAction::kBlocked:
        // Context was saved by BlockCurrentForRestart; a wake re-queues it.
        ++stats_.yields_or_blocks;
        break;
      case StopAction::kTerminated:
        break;
      case StopAction::kContinue:
        break;  // unreachable
    }
    kernel_.current_ = nullptr;
  }

  for (const auto& [p, proc] : kernel_.processes_) {
    (void)p;
    switch (proc->state) {
      case ProcessState::kExited:
        ++result.exited;
        break;
      case ProcessState::kKilled:
        ++result.killed;
        break;
      case ProcessState::kBlocked:
        ++result.blocked;
        break;
      case ProcessState::kRunnable:
        break;
    }
  }
  result.cycles = cpu.cycles() - start_cycles;
  return result;
}

}  // namespace palladium
