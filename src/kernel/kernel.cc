#include "src/kernel/kernel.h"

#include <cstring>

#include "src/hw/paging.h"
#include "src/kernel/sched.h"
#include "src/obs/trace.h"

namespace palladium {

namespace {

// Builds a LoadedSegment the way ForceSegment would, for saved contexts.
LoadedSegment MakeLoaded(const DescriptorTable& gdt, Selector sel) {
  LoadedSegment seg;
  seg.selector = sel;
  const SegmentDescriptor* d = gdt.Get(sel.index());
  if (d != nullptr && d->present) {
    seg.cache = *d;
    seg.valid = true;
  }
  return seg;
}

}  // namespace

Kernel::Kernel(Machine& machine) : Kernel(machine, Config{}) {}

Kernel::Kernel(Machine& machine, const Config& config)
    : machine_(machine), config_(config), frames_(machine.pm(), kPageSize) {
  SetupGdtIdt();
  // One interrupt fabric (PIC + hub + local timer) and one `current` slot
  // per vCPU. Devices attach to vCPU 0's hub; IPIs target any core's PIC.
  current_.resize(machine_.num_cpus(), nullptr);
  staged_remote_.resize(machine_.num_cpus());
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    fabric_.push_back(std::make_unique<CpuIrqFabric>());
    fabric_.back()->hub.AddDevice(&fabric_.back()->timer);
  }
  if (config_.timer_interrupts) EnableTimerInterrupts();

  // Kernel page-directory template: one page directory whose kernel half
  // (PDEs for >= 3 GB) is copied into every process. All 256 kernel page
  // tables are pre-created so that later kernel mappings (e.g. extension
  // segments) are visible in every address space.
  PhysicalMemory& pm = machine_.pm();
  kernel_page_dir_template_ = frames_.Alloc();
  for (u32 pde_idx = PdeIndex(kKernelBase); pde_idx < kPtesPerTable; ++pde_idx) {
    u32 table = frames_.Alloc();
    pm.Write32(kernel_page_dir_template_ + pde_idx * 4,
               MakePte(table, kPtePresent | kPteWrite));
  }
  // Direct map: kernel linear [3GB, 3GB + physmem) -> physical [0, physmem),
  // supervisor-only, writable.
  PageTableEditor ed(pm, kernel_page_dir_template_);
  for (u32 phys = 0; phys < pm.size(); phys += kPageSize) {
    ed.Map(kKernelBase + phys, phys, kPtePresent | kPteWrite, [] { return 0u; });
  }

  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    machine_.cpu(c).SetHostCallRange(kHostCallLinearBase, kPageSize);
  }
}

void Kernel::SetupGdtIdt() {
  DescriptorTable& gdt = machine_.gdt();
  gdt.Set(kGdtKernelCs, SegmentDescriptor::MakeCode(kKernelBase, kKernelSpan, 0));
  gdt.Set(kGdtKernelDs, SegmentDescriptor::MakeData(kKernelBase, kKernelSpan, 0));
  gdt.Set(kGdtUserCs, SegmentDescriptor::MakeCode(0, kUserLimit, 3));
  gdt.Set(kGdtUserDs, SegmentDescriptor::MakeData(0, kUserLimit, 3));
  gdt.Set(kGdtAppCs, SegmentDescriptor::MakeCode(0, kUserLimit, 2));
  gdt.Set(kGdtAppDs, SegmentDescriptor::MakeData(0, kUserLimit, 2));
  gdt.Set(kGdtKernelReturnGate,
          SegmentDescriptor::MakeCallGate(kKernelCsSel.raw(),
                                          HostEntryOffset(kHostEntryKextReturn), 1));

  DescriptorTable& idt = machine_.idt();
  idt.Set(kVecSyscall, SegmentDescriptor::MakeInterruptGate(
                           kKernelCsSel.raw(), HostEntryOffset(kHostEntrySyscall), 3));
  idt.Set(kVecKernelService,
          SegmentDescriptor::MakeInterruptGate(kKernelCsSel.raw(),
                                               HostEntryOffset(kHostEntryKernelService), 1));
  // Hardware IRQ vectors: DPL 0 gates (hardware delivery ignores gate DPL;
  // the DPL keeps simulated code from raising them with `int`).
  for (u32 irq = 0; irq < kNumIrqVectors; ++irq) {
    idt.Set(static_cast<u16>(kVecIrqBase + irq),
            SegmentDescriptor::MakeInterruptGate(
                kKernelCsSel.raw(), HostEntryOffset(kHostEntryIrqBase + irq), 0));
  }
}

void Kernel::EnableTimerInterrupts() {
  if (interrupts_enabled_) return;
  interrupts_enabled_ = true;
  const u64 period =
      config_.timer_period_cycles != 0 ? config_.timer_period_cycles : config_.timer_slice_cycles;
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    machine_.cpu(c).set_irq_hub(&fabric_[c]->hub);
    fabric_[c]->timer.Program(period, machine_.cpu(c).cycles());
  }
}

void Kernel::AttachObservability(obs::FlightRecorder* recorder,
                                 obs::CycleProfile* profiler) {
  recorder_ = recorder;
  profiler_ = profiler;
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    machine_.cpu(c).set_recorder(recorder, c);
    machine_.cpu(c).set_profiler(profiler, c);
    if (recorder != nullptr && c < recorder->num_tracks() &&
        recorder->track_name(c).empty()) {
      recorder->SetTrackName(c, "cpu" + std::to_string(c));
    }
  }
}

obs::Category Kernel::ProfileSet(obs::Category cat) {
  if (profiler_ == nullptr || !profiler_->enabled()) return cat;
  const u32 c = machine_.current_cpu_index();
  const obs::Category prev = profiler_->Current(c);
  const Cpu& cpu = machine_.cpu(c);
  profiler_->Set(c, cpu.cycles(), cpu.tlb_stats().misses, cat);
  return prev;
}

void Kernel::StageRemoteOp(u32 target_cpu, const RemoteOp& op) {
  std::lock_guard<std::mutex> lock(remote_ops_mu_);
  staged_remote_[target_cpu].push_back(op);
}

u32 Kernel::staged_remote_ops(u32 target_cpu) const {
  std::lock_guard<std::mutex> lock(remote_ops_mu_);
  return target_cpu < staged_remote_.size()
             ? static_cast<u32>(staged_remote_[target_cpu].size())
             : 0;
}

u32 Kernel::DrainRemoteOps(u32 target_cpu) {
  std::vector<RemoteOp> ops;
  {
    std::lock_guard<std::mutex> lock(remote_ops_mu_);
    if (target_cpu >= staged_remote_.size()) return 0;
    ops.swap(staged_remote_[target_cpu]);
  }
  if (ops.empty()) return 0;
  // Apply as-if on the target core: staging off so the synchronous paths
  // run, current_cpu switched so recorder events and cycle stamps land on
  // the target's track. Only valid in a quiesced/serial context (the epoch
  // barrier window) — documented in the header.
  const bool was_staging = stage_remote_ops_;
  stage_remote_ops_ = false;
  const u32 saved_cpu = machine_.current_cpu_index();
  machine_.set_current_cpu(target_cpu);
  for (const RemoteOp& op : ops) {
    switch (op.kind) {
      case RemoteOp::Kind::kFlushPage:
        machine_.cpu(target_cpu).tlb().FlushPage(op.arg);
        break;
      case RemoteOp::Kind::kFlushAll:
        machine_.cpu(target_cpu).tlb().Flush();
        break;
      case RemoteOp::Kind::kIpi:
        SendIpi(target_cpu, op.irq);
        break;
      case RemoteOp::Kind::kEvictFrame:
        machine_.cpu(target_cpu).decode_cache().EvictFrame(op.arg);
        break;
      case RemoteOp::Kind::kWake:
        if (sched_ != nullptr) sched_->ApplyStagedWake(target_cpu, op.arg, op.stamp);
        break;
    }
  }
  machine_.set_current_cpu(saved_cpu);
  stage_remote_ops_ = was_staging;
  return static_cast<u32>(ops.size());
}

void Kernel::SendIpi(u32 target_cpu, u32 ipi_irq) {
  if (target_cpu >= machine_.num_cpus()) return;
  if (stage_remote_ops_ && target_cpu != machine_.current_cpu_index()) {
    StageRemoteOp(target_cpu, RemoteOp{RemoteOp::Kind::kIpi, 0, ipi_irq, 0});
    return;
  }
  fabric_[target_cpu]->pic.Raise(ipi_irq);
  if (recorder_ != nullptr) {
    const u32 cur_cpu = machine_.current_cpu_index();
    recorder_->Record(cur_cpu, machine_.cpu(cur_cpu).cycles(),
                      obs::EventType::kIrqRaise, obs::EventClass::kArch,
                      ipi_irq, target_cpu);
  }
}

void Kernel::ShootdownPage(u32 cr3, u32 linear) {
  // Local INVLPG, exactly the uniprocessor behavior (flushing the TLB page
  // bumps change_count, killing the D-TLB and fetch fast path).
  const u32 cur_cpu = machine_.current_cpu_index();
  machine_.cpu(cur_cpu).tlb().FlushPage(linear);
  if (machine_.num_cpus() == 1) return;
  // Remote shootdown. Only cores that can actually cache the translation
  // are targeted (the cpu_vm_mask optimization): a core running another
  // CR3 flushed everything on its last address-space switch, so only cores
  // on the edited CR3 — or every core, for shared kernel-range mappings —
  // can hold a stale entry. The initiator "spins for acks": the remote
  // invalidation is applied synchronously here, and the IPI charges the
  // target core's interrupt cost at its next retire boundary.
  const bool kernel_range = linear >= kKernelBase || cr3 == kernel_page_dir_template_;
  u32 remote = 0;
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    if (c == cur_cpu) continue;
    if (!kernel_range && machine_.cpu(c).cr3() != cr3) continue;
    if (stage_remote_ops_) {
      // Threaded mode: the sibling may be mid-epoch on its own thread, so
      // its TLB cannot be touched here. Queue the invalidation; the barrier
      // drain applies it before the sibling's next epoch.
      StageRemoteOp(c, RemoteOp{RemoteOp::Kind::kFlushPage, linear, 0, 0});
    } else {
      machine_.cpu(c).tlb().FlushPage(linear);
    }
    ++remote;
    if (interrupts_enabled_) {
      SendIpi(c, kIrqIpiShootdown);
      ++smp_stats_.shootdown_ipis;
    }
  }
  if (remote != 0) {
    ++smp_stats_.shootdown_pages;
    if (recorder_ != nullptr) {
      recorder_->Record(cur_cpu, machine_.cpu(cur_cpu).cycles(),
                        obs::EventType::kTlbShootdown, obs::EventClass::kArch,
                        PageNumber(linear), remote);
    }
  }
}

void Kernel::FlushAddressSpace(u32 cr3) {
  const u32 cur_cpu = machine_.current_cpu_index();
  machine_.cpu(cur_cpu).tlb().Flush();
  if (machine_.num_cpus() == 1) return;
  bool any_remote = false;
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    if (c == cur_cpu || machine_.cpu(c).cr3() != cr3) continue;
    if (stage_remote_ops_) {
      StageRemoteOp(c, RemoteOp{RemoteOp::Kind::kFlushAll, 0, 0, 0});
    } else {
      machine_.cpu(c).tlb().Flush();
    }
    any_remote = true;
    if (interrupts_enabled_) {
      SendIpi(c, kIrqIpiShootdown);
      ++smp_stats_.shootdown_ipis;
    }
  }
  if (any_remote) ++smp_stats_.full_flushes;
}

void Kernel::RegisterIrqHandler(u32 irq, IrqHandler handler) {
  irq_handlers_[irq] = std::move(handler);
}

// --- Process lifecycle -------------------------------------------------------

Pid Kernel::CreateProcess() {
  auto proc = std::make_unique<Process>();
  proc->pid = next_pid_++;
  if (!BuildAddressSpace(*proc)) return 0;
  Pid pid = proc->pid;
  processes_[pid] = std::move(proc);
  return pid;
}

Process* Kernel::process(Pid pid) {
  auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : it->second.get();
}

bool Kernel::BuildAddressSpace(Process& proc) {
  PhysicalMemory& pm = machine_.pm();
  proc.cr3 = frames_.Alloc();
  if (proc.cr3 == 0) return false;
  // Share the kernel half of the template page directory.
  for (u32 pde_idx = PdeIndex(kKernelBase); pde_idx < kPtesPerTable; ++pde_idx) {
    u32 pde = 0;
    pm.Read32(kernel_page_dir_template_ + pde_idx * 4, &pde);
    pm.Write32(proc.cr3 + pde_idx * 4, pde);
  }
  proc.kernel_stack_frame = frames_.Alloc();
  if (proc.kernel_stack_frame == 0) return false;
  // Kernel-segment offset == physical address thanks to the direct map.
  proc.esp0 = proc.kernel_stack_frame + kPageSize;
  return true;
}

void Kernel::EvictFrameEverywhere(u32 frame) {
  const u32 cur_cpu = machine_.current_cpu_index();
  for (u32 c = 0; c < machine_.num_cpus(); ++c) {
    if (stage_remote_ops_ && c != cur_cpu) {
      StageRemoteOp(c, RemoteOp{RemoteOp::Kind::kEvictFrame, frame, 0, 0});
    } else {
      machine_.cpu(c).decode_cache().EvictFrame(frame);
    }
  }
}

PageTableEditor Kernel::Editor(u32 cr3) {
  // Every live-machine PTE edit goes through the shootdown protocol: local
  // INVLPG plus exact cross-CPU invalidation with IPI cost modelling.
  return PageTableEditor(machine_.pm(), cr3,
                         [this, cr3](u32 linear) { ShootdownPage(cr3, linear); });
}

void Kernel::ReleaseAddressSpace(Process& proc) {
  // Frees user page tables and frames (kernel tables are shared). Freed
  // frames are evicted from *every* vCPU's decode cache so a stale decoded
  // image cannot linger across frame reuse on any core, and the fetch fast
  // path is dropped with the address space.
  PhysicalMemory& pm = machine_.pm();
  for (u32 pde_idx = 0; pde_idx < PdeIndex(kKernelBase); ++pde_idx) {
    u32 pde = 0;
    pm.Read32(proc.cr3 + pde_idx * 4, &pde);
    if (!(pde & kPtePresent)) continue;
    u32 table = pde & kPteFrameMask;
    for (u32 i = 0; i < kPtesPerTable; ++i) {
      u32 pte = 0;
      pm.Read32(table + i * 4, &pte);
      if (pte & kPtePresent) {
        EvictFrameEverywhere(pte & kPteFrameMask);
        frames_.Free(pte & kPteFrameMask);
      }
    }
    frames_.Free(table);
    pm.Write32(proc.cr3 + pde_idx * 4, 0);
  }
  proc.areas.clear();
}

bool Kernel::AddArea(Process& proc, u32 start, u32 end, u32 prot, const char* tag) {
  start = PageAlignDown(start);
  end = PageAlignUp(end);
  if (start >= end || end > kUserLimit) return false;
  for (const VmArea& a : proc.areas) {
    if (start < a.end && a.start < end) return false;  // overlap
  }
  VmArea area;
  area.start = start;
  area.end = end;
  area.prot = prot;
  area.tag = tag;
  proc.areas.push_back(area);
  return true;
}

bool Kernel::MapUserPage(Process& proc, u32 linear, const VmArea& area) {
  linear = PageAlignDown(linear);
  u32 frame = frames_.Alloc();
  if (frame == 0) return false;
  const bool writable = (area.prot & kProtWrite) != 0;
  // Palladium PPL policy (Section 4.4.1): once the process is at SPL 2,
  // writable pages default to PPL 0 unless explicitly shared via set_range.
  bool ppl1 = true;
  if (proc.ppl_policy && writable && !area.shared_ppl1 &&
      proc.ppl1_pages.count(PageNumber(linear)) == 0) {
    ppl1 = false;
  }
  u32 flags = kPtePresent | (writable ? kPteWrite : 0) | (ppl1 ? kPteUser : 0);
  PageTableEditor ed = Editor(proc.cr3);
  return ed.Map(linear, frame, flags, [this] { return frames_.Alloc(); });
}

bool Kernel::PopulateRange(Process& proc, u32 start, u32 end) {
  for (u32 addr = PageAlignDown(start); addr < end; addr += kPageSize) {
    VmArea* area = proc.FindArea(addr);
    if (area == nullptr) return false;
    PageTableEditor ed(machine_.pm(), proc.cr3);
    u32 pte = 0;
    if (ed.GetPte(addr, &pte) && (pte & kPtePresent)) continue;
    if (!MapUserPage(proc, addr, *area)) return false;
  }
  return true;
}

bool Kernel::CopyToUser(Process& proc, u32 linear, const void* src, u32 len) {
  // access_ok: user copies must stay inside the user half of the address
  // space. Without this a syscall taking a user pointer (write, sigaction)
  // would walk the shared kernel PDEs and read or clobber kernel memory.
  if (linear >= kUserLimit || len > kUserLimit - linear) return false;
  const u8* p = static_cast<const u8*>(src);
  const bool current_space = cpu().cr3() == proc.cr3;
  while (len > 0) {
    u32 page_off = linear & kPageMask;
    u32 chunk = std::min(len, kPageSize - page_off);
    // Fast path: pages the simulated CPU touched recently sit in its D-TLB
    // with a validated host pointer; a hit replaces the page-table walk.
    // Only valid for the live address space (the D-TLB caches cpu.cr3()).
    if (current_space && cpu().DtlbHostWrite(linear, p, chunk)) {
      linear += chunk;
      p += chunk;
      len -= chunk;
      continue;
    }
    VmArea* area = proc.FindArea(linear);
    if (area == nullptr) return false;
    PageTableEditor ed(machine_.pm(), proc.cr3);
    u32 pte = 0;
    if (!ed.GetPte(linear, &pte) || !(pte & kPtePresent)) {
      if (!MapUserPage(proc, linear, *area)) return false;
      ed.GetPte(linear, &pte);
    }
    if (!machine_.pm().WriteBlock((pte & kPteFrameMask) + page_off, p, chunk)) return false;
    linear += chunk;
    p += chunk;
    len -= chunk;
  }
  return true;
}

bool Kernel::CopyFromUser(Process& proc, u32 linear, void* dst, u32 len) {
  if (linear >= kUserLimit || len > kUserLimit - linear) return false;  // access_ok
  u8* p = static_cast<u8*>(dst);
  const bool current_space = cpu().cr3() == proc.cr3;
  while (len > 0) {
    u32 page_off = linear & kPageMask;
    u32 chunk = std::min(len, kPageSize - page_off);
    if (current_space && cpu().DtlbHostRead(linear, p, chunk)) {
      linear += chunk;
      p += chunk;
      len -= chunk;
      continue;
    }
    PageTableEditor ed(machine_.pm(), proc.cr3);
    u32 pte = 0;
    if (!ed.GetPte(linear, &pte) || !(pte & kPtePresent)) {
      // Unmapped page: demand-zero if within an area.
      VmArea* area = proc.FindArea(linear);
      if (area == nullptr) return false;
      if (!MapUserPage(proc, linear, *area)) return false;
      ed.GetPte(linear, &pte);
    }
    if (!machine_.pm().ReadBlock((pte & kPteFrameMask) + page_off, p, chunk)) return false;
    linear += chunk;
    p += chunk;
    len -= chunk;
  }
  return true;
}

bool Kernel::SetPageUserBit(Process& proc, u32 linear, bool user) {
  // Invalidation rides on the editor hook.
  PageTableEditor ed = Editor(proc.cr3);
  return user ? ed.UpdateFlags(linear, kPteUser, 0) : ed.UpdateFlags(linear, 0, kPteUser);
}

bool Kernel::SetPageWritable(Process& proc, u32 linear, bool writable) {
  PageTableEditor ed = Editor(proc.cr3);
  return writable ? ed.UpdateFlags(linear, kPteWrite, 0) : ed.UpdateFlags(linear, 0, kPteWrite);
}

std::optional<u32> Kernel::GetPte(Process& proc, u32 linear) {
  PageTableEditor ed(machine_.pm(), proc.cr3);
  u32 pte = 0;
  if (!ed.GetPte(linear, &pte)) return std::nullopt;
  return pte;
}

bool Kernel::WriteKernelVirt(u32 linear, const void* src, u32 len) {
  const u8* p = static_cast<const u8*>(src);
  PageTableEditor ed(machine_.pm(), kernel_page_dir_template_);
  while (len > 0) {
    u32 off = linear & kPageMask;
    u32 chunk = std::min(len, kPageSize - off);
    // Kernel mappings are shared by every address space, so any live D-TLB
    // entry for a kernel-range page (extension segments, trampoline argument
    // slots the extension just touched) is valid here regardless of which
    // CR3 primed it. User-range addresses must keep walking the template
    // tables (where they are unmapped) — never the current process's.
    if (linear >= kKernelBase && cpu().DtlbHostWrite(linear, p, chunk)) {
      linear += chunk;
      p += chunk;
      len -= chunk;
      continue;
    }
    u32 pte = 0;
    if (!ed.GetPte(linear, &pte) || !(pte & kPtePresent)) return false;
    if (!machine_.pm().WriteBlock((pte & kPteFrameMask) + off, p, chunk)) return false;
    linear += chunk;
    p += chunk;
    len -= chunk;
  }
  return true;
}

bool Kernel::ReadKernelVirt(u32 linear, void* dst, u32 len) {
  u8* p = static_cast<u8*>(dst);
  PageTableEditor ed(machine_.pm(), kernel_page_dir_template_);
  while (len > 0) {
    u32 off = linear & kPageMask;
    u32 chunk = std::min(len, kPageSize - off);
    if (linear >= kKernelBase && cpu().DtlbHostRead(linear, p, chunk)) {
      linear += chunk;
      p += chunk;
      len -= chunk;
      continue;
    }
    u32 pte = 0;
    if (!ed.GetPte(linear, &pte) || !(pte & kPtePresent)) return false;
    if (!machine_.pm().ReadBlock((pte & kPteFrameMask) + off, p, chunk)) return false;
    linear += chunk;
    p += chunk;
    len -= chunk;
  }
  return true;
}

std::optional<std::string> Kernel::ReadUserString(Process& proc, u32 linear) {
  std::string out;
  for (u32 i = 0; i < 256; ++i) {
    char c = 0;
    if (!CopyFromUser(proc, linear + i, &c, 1)) return std::nullopt;
    if (c == '\0') return out;
    out += c;
  }
  return std::nullopt;
}

u32 Kernel::MapKernelPage(u32 linear, bool user_bit) {
  if (linear < kKernelBase) return 0;
  u32 frame = frames_.Alloc();
  if (frame == 0) return 0;
  PageTableEditor ed = Editor(kernel_page_dir_template_);
  u32 flags = kPtePresent | kPteWrite | (user_bit ? kPteUser : 0);
  if (!ed.Map(linear, frame, flags, [] { return 0u; })) {
    frames_.Free(frame);
    return 0;
  }
  return frame;
}

bool Kernel::UnmapKernelPage(u32 linear) {
  if (linear < kKernelBase) return false;
  PageTableEditor ed = Editor(kernel_page_dir_template_);
  u32 pte = 0;
  if (!ed.GetPte(linear, &pte) || !(pte & kPtePresent)) return false;
  u32 frame = pte & kPteFrameMask;
  // Kernel mappings may have been decoded (extension code runs from them):
  // drop every vCPU's cached translations before the frame is recycled.
  EvictFrameEverywhere(frame);
  ed.Unmap(linear);
  frames_.Free(frame);
  return true;
}

// --- Image loading -----------------------------------------------------------

void Kernel::InstallSignalTrampoline(Process& proc) {
  // The sigreturn trampoline (Linux 2.0 placed an equivalent on the user
  // stack): mov $kSysSigreturn, %eax ; int $0x80
  AddArea(proc, kSignalTrampolinePage, kSignalTrampolinePage + kPageSize, kProtRead,
          "sigreturn-trampoline");
  Insn mov;
  mov.opcode = Opcode::kMovRI;
  mov.r1 = static_cast<u8>(Reg::kEax);
  mov.imm = static_cast<i32>(kSysSigreturn);
  Insn intr;
  intr.opcode = Opcode::kInt;
  intr.imm = static_cast<i32>(kVecSyscall);
  u8 code[2 * kInsnSize];
  mov.EncodeTo(code);
  intr.EncodeTo(code + kInsnSize);
  CopyToUser(proc, kSignalTrampolinePage, code, sizeof(code));
}

bool Kernel::LoadUserImage(Pid pid, const LinkedImage& image, const std::string& entry_symbol,
                           std::string* diag) {
  Process* proc = process(pid);
  if (proc == nullptr) {
    if (diag != nullptr) *diag = "no such process";
    return false;
  }
  auto entry = image.Lookup(entry_symbol);
  if (!entry) {
    if (diag != nullptr) *diag = "entry symbol not found: " + entry_symbol;
    return false;
  }
  const u32 text_start = PageAlignDown(image.text_start);
  const u32 text_end = PageAlignUp(image.text_start + image.text_size);
  const u32 data_end = PageAlignUp(image.data_start + image.data_size);
  if (!AddArea(*proc, text_start, text_end, kProtRead | kProtExec, "text") ||
      (data_end > image.data_start &&
       !AddArea(*proc, image.data_start, data_end, kProtRead | kProtWrite, "data"))) {
    if (diag != nullptr) *diag = "image areas overlap";
    return false;
  }
  proc->heap_start = data_end;
  proc->brk = data_end;
  AddArea(*proc, data_end, data_end + 1, kProtRead | kProtWrite, "heap");
  // Heap area starts empty; brk grows it. (AddArea page-aligns to one page.)
  proc->areas.back().end = data_end;  // truly empty until brk

  if (!AddArea(*proc, kUserStackTop - kUserStackSize, kUserStackTop, kProtRead | kProtWrite,
               "stack")) {
    if (diag != nullptr) *diag = "stack area overlaps image";
    return false;
  }
  InstallSignalTrampoline(*proc);

  if (!CopyToUser(*proc, image.base, image.bytes.data(), static_cast<u32>(image.bytes.size()))) {
    if (diag != nullptr) *diag = "failed to copy image";
    return false;
  }

  CpuContext& ctx = proc->context;
  ctx = CpuContext{};
  ctx.eip = *entry;
  // Processes run with hardware interrupts enabled once the machine has a
  // live timer; without one the bit is meaningless and stays clear so
  // cooperative-mode memory images are untouched.
  ctx.eflags = interrupts_enabled_ ? kFlagIf : 0;
  ctx.cpl = 3;
  ctx.regs[static_cast<u8>(Reg::kEsp)] = kUserStackTop - 16;
  const DescriptorTable& gdt = machine_.gdt();
  ctx.segs[static_cast<u8>(SegReg::kCs)] = MakeLoaded(gdt, kUserCsSel);
  ctx.segs[static_cast<u8>(SegReg::kSs)] = MakeLoaded(gdt, kUserDsSel);
  ctx.segs[static_cast<u8>(SegReg::kDs)] = MakeLoaded(gdt, kUserDsSel);
  ctx.segs[static_cast<u8>(SegReg::kEs)] = MakeLoaded(gdt, kUserDsSel);
  return true;
}

bool Kernel::ExecImage(Pid pid, const LinkedImage& image, const std::string& entry_symbol,
                       std::string* diag) {
  Process* proc = process(pid);
  if (proc == nullptr) {
    if (diag != nullptr) *diag = "no such process";
    return false;
  }
  ReleaseAddressSpace(*proc);
  FlushAddressSpace(proc->cr3);
  // Privilege levels are not inherited across exec (Section 4.5.2).
  proc->task_spl = 3;
  proc->ppl_policy = false;
  proc->ppl1_pages.clear();
  proc->signals = SignalState{};
  proc->state = ProcessState::kRunnable;
  Charge(config_.costs.exec_base);
  return LoadUserImage(pid, image, entry_symbol, diag);
}

// --- Run loop ----------------------------------------------------------------

void Kernel::SwitchTo(Process& proc) {
  cpu().LoadCr3(proc.cr3);
  Tss& tss = cpu().tss();
  tss.ss[0] = kKernelDsSel.raw();
  tss.esp[0] = proc.esp0;
  tss.ss[2] = kAppDsSel.raw();
  tss.esp[2] = proc.pl2_stack_top;
  cpu().RestoreContext(proc.context);
  // Kernel policy, as on Linux: process context always runs with hardware
  // interrupts open once the machine has a live timer. Applying it here (not
  // only at image load) means processes loaded before EnableTimerInterrupts
  // or the Scheduler existed are still preemptible and watchdog-covered.
  if (interrupts_enabled_) cpu().set_eflags(cpu().eflags() | kFlagIf);
  cur() = &proc;
  Charge(config_.costs.context_switch);
  if (recorder_ != nullptr) {
    const u32 cur_cpu = machine_.current_cpu_index();
    recorder_->Record(cur_cpu, cpu().cycles(), obs::EventType::kContextSwitch,
                      obs::EventClass::kArch, proc.pid, 0);
  }
}

void Kernel::SaveCurrent() {
  if (cur() != nullptr) cur()->context = cpu().SaveContext();
}

void Kernel::ExtensionWatchdogTick(Process& proc) {
  // The extension CPU-time limit (Section 4.5.2). Interrupt-driven (called
  // from the timer IRQ after the interrupted context was restored) or from
  // the cooperative slice check — identical logic either way.
  if (proc.task_spl == 2 && cpu().cpl() == 3) {
    if (!proc.in_extension) {
      proc.in_extension = true;
      proc.ext_cycle_start = cpu().cycles();
    } else if (cpu().cycles() - proc.ext_cycle_start > config_.extension_cycle_limit) {
      proc.in_extension = false;
      if (time_limit_hook_) {
        time_limit_hook_(*this, proc);
      } else {
        DeliverSignal(proc, kSigXcpu);
      }
    }
  } else {
    proc.in_extension = false;
  }
}

bool Kernel::HandleIrqFromGate(u32 irq, bool in_kernel_context) {
  const u32 cur_cpu = machine_.current_cpu_index();
  // Attribute the host-side IRQ service span to kIrq, restoring the
  // interrupted category (kernel, or crossing during a kext invocation) on
  // every exit path below.
  const obs::Category prev_cat = ProfileSet(obs::Category::kIrq);
  Charge(config_.costs.irq_dispatch);
  fabric_[cur_cpu]->pic.Eoi();
  if (recorder_ != nullptr) {
    recorder_->Record(cur_cpu, cpu().cycles(), obs::EventType::kIrqEoi,
                      obs::EventClass::kArch, irq, 0);
  }
  // Hardware interrupts are transparent: restore the interrupted context
  // before any kernel work, so handlers (which are host code) see the
  // machine exactly as the interrupt found it.
  ReturnFromInterrupt();
  bool preempt = false;
  if (irq == kIrqTimer && !in_kernel_context) {
    if (cur() != nullptr) ExtensionWatchdogTick(*cur());
    if (sched_ != nullptr && sched_->OnTimerTick()) preempt = true;
  } else if (irq == kIrqIpiShootdown) {
    // The invalidation itself was applied synchronously by the initiator
    // (it spins for acks); what the target pays here is the interrupt cost.
    ++smp_stats_.ipis_received;
  } else if (irq == kIrqIpiResched) {
    ++smp_stats_.ipis_received;
    if (sched_ != nullptr && !in_kernel_context) preempt = true;
  }
  auto it = irq_handlers_.find(irq);
  if (it != irq_handlers_.end()) it->second(*this);
  ProfileRestore(prev_cat);
  return preempt;
}

void Kernel::ServicePendingIrqsHostSide() {
  // Services the *current* vCPU's fabric (the scheduler walks the cores,
  // setting the machine's current index, when several sit idle).
  const u32 cur_cpu = machine_.current_cpu_index();
  InterruptController& pic = fabric_[cur_cpu]->pic;
  fabric_[cur_cpu]->hub.AdvanceDevices(cpu().cycles());
  for (;;) {
    const int vec = pic.Acknowledge();
    if (vec < 0) break;
    const u32 irq = static_cast<u32>(vec) - kVecIrqBase;
    const obs::Category prev_cat = ProfileSet(obs::Category::kIrq);
    pic.Eoi();
    if (recorder_ != nullptr) {
      recorder_->Record(cur_cpu, cpu().cycles(), obs::EventType::kIrqEoi,
                        obs::EventClass::kArch, irq, 0);
    }
    if (irq == kIrqIpiShootdown || irq == kIrqIpiResched) ++smp_stats_.ipis_received;
    // No watchdog/preemption while idle (there is no current process), but
    // user-registered handlers — including one on the timer line — still
    // run, matching the gate path.
    auto it = irq_handlers_.find(irq);
    if (it != irq_handlers_.end()) it->second(*this);
    ProfileRestore(prev_cat);
  }
}

StopAction Kernel::DispatchStop(const StopInfo& stop) {
  bool preempt = false;
  switch (stop.reason) {
    case StopReason::kHostCall:
      if (stop.host_call_id >= kHostEntryIrqBase &&
          stop.host_call_id < kHostEntryIrqBase + kNumIrqVectors) {
        preempt = HandleIrqFromGate(stop.host_call_id - kHostEntryIrqBase,
                                    /*in_kernel_context=*/false);
      } else if (stop.host_call_id == kHostEntrySyscall) {
        HandleSyscall();
      } else {
        auto it = host_calls_.find(stop.host_call_id);
        if (it != host_calls_.end()) {
          it->second(*this);
        } else {
          KillCurrent("jump into unregistered kernel entry");
        }
      }
      break;
    case StopReason::kFault:
      HandleFault(stop);
      break;
    case StopReason::kHalted:
      KillCurrent("unexpected hlt from process context");
      break;
    case StopReason::kCycleLimit:
      break;  // the run loop owns deadline semantics
  }
  if (preempt_pending_) {
    preempt_pending_ = false;
    preempt = true;
  }
  if (cur() == nullptr) return StopAction::kTerminated;
  switch (cur()->state) {
    case ProcessState::kRunnable:
      return preempt ? StopAction::kPreempt : StopAction::kContinue;
    case ProcessState::kBlocked:
      return StopAction::kBlocked;
    default:
      return StopAction::kTerminated;
  }
}

RunResult Kernel::RunProcess(Pid pid, u64 cycle_budget) {
  RunResult result;
  Process* proc = process(pid);
  if (proc == nullptr || proc->state != ProcessState::kRunnable) {
    result.outcome = RunOutcome::kKilled;
    result.kill_reason = "process not runnable";
    return result;
  }
  SwitchTo(*proc);
  const u64 deadline =
      cycle_budget == ~0ull ? ~0ull : cpu().cycles() + cycle_budget;

  while (proc->state == ProcessState::kRunnable) {
    // With hardware timer interrupts the watchdog rides the IRQ path and the
    // CPU runs straight to the caller's deadline; without them, chop the run
    // into slices and tick the watchdog cooperatively (the legacy behavior,
    // observable-identical for existing callers). Either way the slice edge
    // is exact: Cpu::Run stops at instruction-retire boundaries only, and
    // the superblock engine ends its basic-block runs early at the same
    // frontier, so watchdog and slice accounting are engine-independent.
    u64 slice_end = deadline;
    if (!interrupts_enabled_) {
      slice_end = cpu().cycles() + config_.timer_slice_cycles;
      if (slice_end > deadline) slice_end = deadline;
    }
    StopInfo stop = cpu().Run(slice_end);
    if (stop.reason == StopReason::kCycleLimit) {
      if (cpu().cycles() >= deadline) {
        SaveCurrent();
        result.outcome = RunOutcome::kCycleLimit;
        return result;
      }
      ExtensionWatchdogTick(*proc);
      continue;
    }
    const StopAction action = DispatchStop(stop);
    if (action == StopAction::kBlocked) {
      // RunProcess has no other process to switch to; the process stays
      // parked (state kBlocked) and a Scheduler — or a WakeProcess plus a
      // second RunProcess — can resume it.
      cur() = nullptr;
      result.outcome = RunOutcome::kBlocked;
      return result;
    }
    // kContinue / kPreempt (meaningless without a scheduler) / kTerminated:
    // the loop condition sorts them out.
  }

  cur() = nullptr;
  if (proc->state == ProcessState::kExited) {
    result.outcome = RunOutcome::kExited;
    result.exit_code = proc->exit_code;
  } else {
    result.outcome = RunOutcome::kKilled;
    result.kill_reason = proc->kill_reason;
  }
  return result;
}

void Kernel::BlockCurrentForRestart() {
  Process& proc = *cur();
  GateFrame frame;
  if (!PeekGateFrame(&frame) || !frame.has_outer_stack) {
    KillCurrent("cannot block: unreadable gate frame");
    return;
  }
  // Park the process with a context that re-executes the trapping `int`
  // instruction on wakeup (restart semantics): registers still hold the
  // system-call arguments, so the retry re-evaluates the wait condition.
  CpuContext ctx = cpu().SaveContext();
  const DescriptorTable& gdt = machine_.gdt();
  Selector cs_sel(static_cast<u16>(frame.cs));
  Selector ss_sel(static_cast<u16>(frame.ss));
  ctx.eip = frame.eip - kInsnSize;
  ctx.eflags = frame.eflags;
  ctx.cpl = cs_sel.rpl();
  ctx.regs[static_cast<u8>(Reg::kEsp)] = frame.esp;
  ctx.segs[static_cast<u8>(SegReg::kCs)] = MakeLoaded(gdt, cs_sel);
  ctx.segs[static_cast<u8>(SegReg::kSs)] = MakeLoaded(gdt, ss_sel);
  proc.context = ctx;
  proc.state = ProcessState::kBlocked;
}

void Kernel::WakeProcess(Process& proc) {
  if (proc.state != ProcessState::kBlocked) return;
  proc.state = ProcessState::kRunnable;
  proc.waiting_packet = false;
  if (sched_ != nullptr) sched_->OnWake(proc.pid);
}

void Kernel::KillCurrent(const std::string& reason) {
  if (cur() == nullptr) return;
  cur()->state = ProcessState::kKilled;
  cur()->kill_reason = reason;
}

// --- Gate frame helpers --------------------------------------------------------

bool Kernel::PeekGateFrame(GateFrame* frame) {
  Fault f;
  u32 esp = cpu().reg(Reg::kEsp);
  u32 eip = 0, cs = 0, eflags = 0, oesp = 0, oss = 0;
  if (!cpu().ReadVirt(SegReg::kSs, esp + 0, 4, &eip, &f) ||
      !cpu().ReadVirt(SegReg::kSs, esp + 4, 4, &cs, &f) ||
      !cpu().ReadVirt(SegReg::kSs, esp + 8, 4, &eflags, &f)) {
    return false;
  }
  frame->eip = eip;
  frame->cs = cs;
  frame->eflags = eflags;
  Selector cs_sel(static_cast<u16>(cs));
  if (cs_sel.rpl() > cpu().cpl()) {
    if (!cpu().ReadVirt(SegReg::kSs, esp + 12, 4, &oesp, &f) ||
        !cpu().ReadVirt(SegReg::kSs, esp + 16, 4, &oss, &f)) {
      return false;
    }
    frame->esp = oesp;
    frame->ss = oss;
    frame->has_outer_stack = true;
  }
  return true;
}

bool Kernel::PatchGateFrameSelectors(Selector cs, Selector ss) {
  Fault f;
  u32 esp = cpu().reg(Reg::kEsp);
  return cpu().WriteVirt(SegReg::kSs, esp + 4, 4, cs.raw(), &f) &&
         cpu().WriteVirt(SegReg::kSs, esp + 16, 4, ss.raw(), &f);
}

void Kernel::ReturnFromGate(u32 eax_value) {
  cpu().set_reg(Reg::kEax, eax_value);
  ResumeFromGateFrame();
}

// IRET for hardware interrupts: identical to a syscall return except every
// register — EAX included — must come back untouched.
void Kernel::ReturnFromInterrupt() { ResumeFromGateFrame(); }

void Kernel::ResumeFromGateFrame() {
  Fault f;
  u32 eip = 0, cs = 0, eflags = 0;
  if (!cpu().Pop32(&eip, &f) || !cpu().Pop32(&cs, &f) || !cpu().Pop32(&eflags, &f)) {
    KillCurrent("corrupt gate frame");
    return;
  }
  Selector cs_sel(static_cast<u16>(cs));
  if (cs_sel.rpl() > cpu().cpl()) {
    u32 oesp = 0, oss = 0;
    if (!cpu().Pop32(&oesp, &f) || !cpu().Pop32(&oss, &f)) {
      KillCurrent("corrupt gate frame (outer stack)");
      return;
    }
    if (!cpu().ForceSegment(SegReg::kCs, cs_sel) ||
        !cpu().ForceSegment(SegReg::kSs, Selector(static_cast<u16>(oss)))) {
      KillCurrent("gate frame references dead segments");
      return;
    }
    cpu().set_reg(Reg::kEsp, oesp);
  } else if (!cpu().ForceSegment(SegReg::kCs, cs_sel)) {
    KillCurrent("gate frame references dead segment");
    return;
  }
  cpu().set_eip(eip);
  cpu().set_eflags(eflags);
  Charge(cpu().cycle_model().iret_inter);
}

// --- Host call / syscall plumbing ---------------------------------------------

void Kernel::RegisterHostCall(u32 id, HostCallHandler handler) {
  host_calls_[id] = std::move(handler);
}

u32 Kernel::AllocateHostCallId() { return next_host_call_id_++; }

void Kernel::RegisterSyscall(u32 number, SyscallHandler handler) {
  extra_syscalls_[number] = std::move(handler);
}

void Kernel::HandleSyscall() {
  Process& proc = *cur();
  Charge(config_.costs.syscall_dispatch);
  const u32 nr = cpu().reg(Reg::kEax);
  const u32 ebx = cpu().reg(Reg::kEbx);
  const u32 ecx = cpu().reg(Reg::kEcx);
  const u32 edx = cpu().reg(Reg::kEdx);

  // taskSPL gating (Section 4.5.2): once the process promoted itself to SPL
  // 2, system calls arriving from SPL 3 code (i.e. user extensions) are
  // rejected. Non-Palladium processes (taskSPL == 3) are unaffected.
  GateFrame frame;
  if (!PeekGateFrame(&frame)) {
    KillCurrent("unreadable syscall frame");
    return;
  }
  const u8 caller_spl = Selector(static_cast<u16>(frame.cs)).rpl();
  if (proc.task_spl == 2 && caller_spl == 3) {
    ReturnFromGate(kErrPerm);
    return;
  }
  // Kernel extensions (SPL 1) may only use the kernel-service gate, never
  // the general system-call interface (Section 4.1).
  if (caller_spl <= 1) {
    ReturnFromGate(kErrPerm);
    return;
  }

  switch (nr) {
    case kSysExit:
      SysExit(ebx);
      return;
    case kSysFork:
      SysFork();
      return;
    case kSysWrite:
      SysWrite(ebx, ecx);
      return;
    case kSysGetPid:
      ReturnFromGate(proc.pid);
      return;
    case kSysKill:
      // Signal to self, delivered on return to user (as Linux does).
      ReturnFromGate(0);
      if (proc.state == ProcessState::kRunnable) DeliverSignal(proc, ebx);
      return;
    case kSysBrk:
      SysBrk(ebx);
      return;
    case kSysMmap:
      SysMmap(ebx, ecx, edx);
      return;
    case kSysMunmap:
      SysMunmap(ebx, ecx);
      return;
    case kSysMprotect:
      SysMprotect(ebx, ecx, edx);
      return;
    case kSysSigaction:
      SysSigaction(ebx, ecx);
      return;
    case kSysSigreturn:
      SysSigreturn();
      return;
    case kSysInitPL:
      SysInitPL();
      return;
    case kSysSetRange:
      SysSetRange(ebx, ecx, edx);
      return;
    case kSysSetCallGate:
      SysSetCallGate(ebx);
      return;
    case kSysYield:
      ReturnFromGate(0);
      if (sched_ != nullptr) {
        preempt_pending_ = true;
        sched_->OnYield();
      }
      return;
    case kSysInvokeKext: {
      if (!kext_invoker_) {
        ReturnFromGate(kErrNoEnt);
        return;
      }
      bool ok = true;
      u32 result = kext_invoker_(*this, ebx, ecx, &ok);
      if (cur() == nullptr || cur()->state != ProcessState::kRunnable) return;
      ReturnFromGate(ok ? result : kErrFault);
      return;
    }
    default: {
      auto it = extra_syscalls_.find(nr);
      if (it != extra_syscalls_.end()) {
        it->second(*this, ebx, ecx, edx);
        return;
      }
      ReturnFromGate(kErrNoEnt);
      return;
    }
  }
}

// --- Fault handling ------------------------------------------------------------

void Kernel::HandleFault(const StopInfo& stop) {
  Process& proc = *cur();
  const Fault& fault = stop.fault;
  const u8 cpl = cpu().cpl();

  if (fault.vector == FaultVector::kPageFault && !(fault.error_code & kPfErrPresent)) {
    // Demand paging: a not-present page inside a mapped area.
    VmArea* area = proc.FindArea(fault.linear_address);
    const bool want_write = (fault.error_code & kPfErrWrite) != 0;
    if (area != nullptr && (!want_write || (area->prot & kProtWrite) != 0)) {
      if (MapUserPage(proc, fault.linear_address, *area)) {
        // MapUserPage's editor hook already flushed the page's TLB entry.
        Charge(config_.costs.page_fault_service);
        return;  // retry the faulting instruction
      }
      KillCurrent("out of memory during demand paging");
      return;
    }
  }

  // Kernel-extension (SPL 1) and application-segment (SPL 2) faults go to
  // the Palladium module first.
  if ((cpl == 1 || cpl == 2) && extension_fault_hook_ && extension_fault_hook_(*this, stop)) {
    return;
  }

  // Palladium user-extension containment: fault raised by SPL 3 code in an
  // SPL 2 process delivers SIGSEGV to the extended application.
  if (proc.task_spl == 2 && cpl == 3) {
    Charge(config_.costs.sigsegv_delivery);
    DeliverSignal(proc, kSigSegv);
    return;
  }

  // Ordinary process fault: SIGSEGV if handled, else kill.
  if (cpl == 3 && proc.signals.handlers[kSigSegv % kNumSignals] != 0) {
    Charge(config_.costs.sigsegv_delivery);
    DeliverSignal(proc, kSigSegv);
    return;
  }
  KillCurrent("fault: " + FaultToString(fault));
}

void Kernel::DeliverSignal(Process& proc, u32 signo) {
  signo %= kNumSignals;
  u32 handler = proc.signals.handlers[signo];
  if (handler == 0) {
    KillCurrent("unhandled signal " + std::to_string(signo));
    return;
  }
  proc.signals.saved_context = cpu().SaveContext();
  proc.signals.in_handler = true;
  proc.signals.last_signal = signo;
  ++proc.signals.delivered_count;

  const DescriptorTable& gdt = machine_.gdt();
  CpuContext ctx = cpu().SaveContext();
  u32 stack_top;
  if (proc.task_spl == 2) {
    // Handler runs in the extended application at SPL 2; use the PL 2
    // transition stack (never the extension's stack).
    ctx.cpl = 2;
    ctx.segs[static_cast<u8>(SegReg::kCs)] = MakeLoaded(gdt, kAppCsSel);
    ctx.segs[static_cast<u8>(SegReg::kSs)] = MakeLoaded(gdt, kAppDsSel);
    ctx.segs[static_cast<u8>(SegReg::kDs)] = MakeLoaded(gdt, kAppDsSel);
    ctx.segs[static_cast<u8>(SegReg::kEs)] = MakeLoaded(gdt, kAppDsSel);
    stack_top = proc.pl2_stack_top != 0 ? proc.pl2_stack_top - 256 : kUserStackTop - 4096;
  } else {
    ctx.cpl = 3;
    ctx.segs[static_cast<u8>(SegReg::kCs)] = MakeLoaded(gdt, kUserCsSel);
    ctx.segs[static_cast<u8>(SegReg::kSs)] = MakeLoaded(gdt, kUserDsSel);
    ctx.segs[static_cast<u8>(SegReg::kDs)] = MakeLoaded(gdt, kUserDsSel);
    ctx.segs[static_cast<u8>(SegReg::kEs)] = MakeLoaded(gdt, kUserDsSel);
    stack_top = ctx.regs[static_cast<u8>(Reg::kEsp)];
  }
  // Frame: [return address -> sigreturn trampoline][signo]
  u32 esp = stack_top - 8;
  u32 words[2] = {kSignalTrampolinePage, signo};
  if (!CopyToUser(proc, esp, words, sizeof(words))) {
    KillCurrent("cannot build signal frame");
    return;
  }
  ctx.regs[static_cast<u8>(Reg::kEsp)] = esp;
  ctx.eip = handler;
  cpu().RestoreContext(ctx);
}

// --- System call implementations ------------------------------------------------

void Kernel::SysExit(u32 code) {
  cur()->state = ProcessState::kExited;
  cur()->exit_code = static_cast<i32>(code);
}

void Kernel::SysWrite(u32 ptr, u32 len) {
  if (len > 1u << 20) {
    ReturnFromGate(kErrInval);
    return;
  }
  std::string buf(len, '\0');
  if (!CopyFromUser(*cur(), ptr, buf.data(), len)) {
    ReturnFromGate(kErrFault);
    return;
  }
  console_ += buf;
  ReturnFromGate(len);
}

void Kernel::SysBrk(u32 new_brk) {
  Process& proc = *cur();
  if (new_brk == 0) {
    ReturnFromGate(proc.brk);
    return;
  }
  if (new_brk < proc.heap_start || new_brk > proc.heap_start + (64u << 20)) {
    ReturnFromGate(proc.brk);
    return;
  }
  for (VmArea& a : proc.areas) {
    if (a.start == proc.heap_start && std::string(a.tag) == "heap") {
      u32 new_end = PageAlignUp(new_brk);
      // Refuse to collide with a later area.
      for (const VmArea& other : proc.areas) {
        if (&other != &a && new_end > other.start && other.start >= a.start) {
          ReturnFromGate(proc.brk);
          return;
        }
      }
      a.end = new_end;
      proc.brk = new_brk;
      ReturnFromGate(new_brk);
      return;
    }
  }
  ReturnFromGate(proc.brk);
}

void Kernel::SysMmap(u32 addr, u32 len, u32 prot) {
  Process& proc = *cur();
  if (len == 0) {
    ReturnFromGate(kErrInval);
    return;
  }
  len = PageAlignUp(len);
  if (addr == 0) {
    addr = proc.mmap_next;
    proc.mmap_next += len + kPageSize;
  }
  if (!AddArea(proc, addr, addr + len, prot, "mmap")) {
    ReturnFromGate(kErrNoMem);
    return;
  }
  // Palladium's mmap change (Section 4.5.2): pages of a writable region in
  // an SPL 2 process are marked PPL 0 — which MapUserPage already applies at
  // page-fault time, exactly as the paper describes.
  ReturnFromGate(addr);
}

bool Kernel::UnmapArea(Process& proc, u32 start, u32 end) {
  for (auto it = proc.areas.begin(); it != proc.areas.end(); ++it) {
    if (it->start == start && it->end == end) {
      PageTableEditor ed = Editor(proc.cr3);
      for (u32 a = start; a < end; a += kPageSize) {
        u32 pte = 0;
        if (ed.GetPte(a, &pte) && (pte & kPtePresent)) {
          EvictFrameEverywhere(pte & kPteFrameMask);
          frames_.Free(pte & kPteFrameMask);
          ed.Unmap(a);
        }
      }
      proc.areas.erase(it);
      return true;
    }
  }
  return false;
}

void Kernel::SysMunmap(u32 addr, u32 len) {
  Process& proc = *cur();
  const u32 start = PageAlignDown(addr);
  const u32 end = PageAlignUp(addr + len);
  ReturnFromGate(UnmapArea(proc, start, end) ? 0 : kErrInval);
}

void Kernel::SysMprotect(u32 addr, u32 len, u32 prot) {
  Process& proc = *cur();
  // The Palladium mprotect hardening is subsumed by taskSPL gating: an SPL 3
  // extension cannot reach this syscall at all in an SPL 2 process. The
  // explicit check remains for defense in depth.
  GateFrame frame;
  if (PeekGateFrame(&frame) && Selector(static_cast<u16>(frame.cs)).rpl() == 3 &&
      proc.task_spl == 2) {
    ReturnFromGate(kErrPerm);
    return;
  }
  const u32 start = PageAlignDown(addr);
  const u32 end = PageAlignUp(addr + len);
  VmArea* area = proc.FindArea(start);
  if (area == nullptr || end > area->end) {
    ReturnFromGate(kErrInval);
    return;
  }
  area->prot = prot;
  PageTableEditor ed = Editor(proc.cr3);
  for (u32 a = start; a < end; a += kPageSize) {
    u32 pte = 0;
    if (ed.GetPte(a, &pte) && (pte & kPtePresent)) {
      if (prot & kProtWrite) {
        ed.UpdateFlags(a, kPteWrite, 0);
      } else {
        ed.UpdateFlags(a, 0, kPteWrite);
      }
    }
  }
  ReturnFromGate(0);
}

void Kernel::SysSigaction(u32 signo, u32 handler) {
  if (signo >= kNumSignals) {
    ReturnFromGate(kErrInval);
    return;
  }
  cur()->signals.handlers[signo] = handler;
  ReturnFromGate(0);
}

void Kernel::SysSigreturn() {
  Process& proc = *cur();
  if (!proc.signals.in_handler) {
    ReturnFromGate(kErrInval);
    return;
  }
  proc.signals.in_handler = false;
  cpu().RestoreContext(proc.signals.saved_context);
}

void Kernel::SysFork() {
  Process& parent = *cur();
  Pid child_pid = CreateProcess();
  if (child_pid == 0) {
    ReturnFromGate(kErrNoMem);
    return;
  }
  Process& child = *process(child_pid);
  // Clone the memory map eagerly (no COW in the prototype kernel).
  child.areas = parent.areas;
  child.brk = parent.brk;
  child.heap_start = parent.heap_start;
  child.mmap_next = parent.mmap_next;
  child.xmalloc_brk = parent.xmalloc_brk;
  child.pl2_stack_top = parent.pl2_stack_top;
  // Palladium: segment/page privilege levels are inherited across fork
  // (Section 4.5.2) — that includes taskSPL, the PPL policy, and the PPL
  // bits in every copied PTE.
  child.task_spl = parent.task_spl;
  child.ppl_policy = parent.ppl_policy;
  child.ppl1_pages = parent.ppl1_pages;
  child.signals.handlers = parent.signals.handlers;

  PhysicalMemory& pm = machine_.pm();
  PageTableEditor ped(pm, parent.cr3);  // read-only walks, no hook needed
  PageTableEditor ced = Editor(child.cr3);
  u32 copied_pages = 0;
  for (const VmArea& area : parent.areas) {
    for (u32 a = area.start; a < area.end; a += kPageSize) {
      u32 pte = 0;
      if (!ped.GetPte(a, &pte) || !(pte & kPtePresent)) continue;
      u32 frame = frames_.Alloc();
      if (frame == 0) {
        ReturnFromGate(kErrNoMem);
        return;
      }
      u8 buf[kPageSize];
      pm.ReadBlock(pte & kPteFrameMask, buf, kPageSize);
      pm.WriteBlock(frame, buf, kPageSize);
      ced.Map(a, frame, pte & kPteFlagsMask, [this] { return frames_.Alloc(); });
      ++copied_pages;
    }
  }
  Charge(config_.costs.fork_base + copied_pages * 100);

  // The child resumes at the syscall return point with EAX = 0.
  GateFrame frame;
  if (!PeekGateFrame(&frame) || !frame.has_outer_stack) {
    KillCurrent("fork: unreadable gate frame");
    return;
  }
  CpuContext ctx = cpu().SaveContext();
  ctx.regs[static_cast<u8>(Reg::kEax)] = 0;
  ctx.regs[static_cast<u8>(Reg::kEsp)] = frame.esp;
  ctx.eip = frame.eip;
  ctx.eflags = frame.eflags;
  const DescriptorTable& gdt = machine_.gdt();
  Selector cs_sel(static_cast<u16>(frame.cs));
  Selector ss_sel(static_cast<u16>(frame.ss));
  ctx.cpl = cs_sel.rpl();
  ctx.segs[static_cast<u8>(SegReg::kCs)] = MakeLoaded(gdt, cs_sel);
  ctx.segs[static_cast<u8>(SegReg::kSs)] = MakeLoaded(gdt, ss_sel);
  // DS/ES as currently loaded in the parent.
  child.context = ctx;

  ReturnFromGate(child_pid);
}

void Kernel::SysInitPL() {
  Process& proc = *cur();
  if (proc.task_spl != 3) {
    ReturnFromGate(kErrPerm);
    return;
  }
  GateFrame frame;
  if (!PeekGateFrame(&frame) || !frame.has_outer_stack) {
    KillCurrent("init_PL: unreadable gate frame");
    return;
  }
  proc.task_spl = 2;
  proc.ppl_policy = true;

  // Mark every already-mapped writable page PPL 0 (Section 4.4.1) and count
  // the work for the cycle model.
  PageTableEditor ed = Editor(proc.cr3);
  u32 marked = 0;
  for (const VmArea& area : proc.areas) {
    if (!(area.prot & kProtWrite) || area.shared_ppl1) continue;
    for (u32 a = area.start; a < area.end; a += kPageSize) {
      u32 pte = 0;
      if (ed.GetPte(a, &pte) && (pte & kPtePresent)) {
        ed.UpdateFlags(a, 0, kPteUser);
        ++marked;
      }
    }
  }
  cpu().tlb().Flush();
  Charge(config_.costs.ppl_mark_startup + marked * config_.costs.ppl_mark_per_page);

  // Allocate the PL 2 transition stack (the TSS inner stack for lcalls from
  // SPL 3 into the application).
  u32 base = proc.mmap_next;
  proc.mmap_next += 4 * kPageSize;
  if (!AddArea(proc, base, base + 2 * kPageSize, kProtRead | kProtWrite, "pl2-stack") ||
      !PopulateRange(proc, base, base + 2 * kPageSize)) {
    KillCurrent("init_PL: cannot allocate PL2 stack");
    return;
  }
  proc.pl2_stack_top = base + 2 * kPageSize;
  cpu().tss().esp[2] = proc.pl2_stack_top;
  cpu().tss().ss[2] = kAppDsSel.raw();

  // Return the caller at SPL 2: rewrite the frame's CS (DPL 2 code) and SS
  // (SS DPL must equal CPL). DS/ES keep the DPL 3 user data segment — legal
  // at CPL 2 (DPL >= CPL) and what lets extensions inherit a usable DS.
  if (!PatchGateFrameSelectors(kAppCsSel, kAppDsSel)) {
    KillCurrent("init_PL: cannot patch gate frame");
    return;
  }
  ReturnFromGate(0);
}

void Kernel::SysSetRange(u32 addr, u32 len, u32 ppl) {
  Process& proc = *cur();
  if (proc.task_spl != 2) {
    ReturnFromGate(kErrPerm);
    return;
  }
  if ((addr & kPageMask) != 0 || len == 0 || (len & kPageMask) != 0 || ppl > 1) {
    // Sharing granularity is whole pages (Section 4.4.1).
    ReturnFromGate(kErrInval);
    return;
  }
  u32 marked = 0;
  for (u32 a = addr; a < addr + len; a += kPageSize) {
    if (proc.FindArea(a) == nullptr) {
      ReturnFromGate(kErrFault);
      return;
    }
    if (ppl == 1) {
      proc.ppl1_pages.insert(PageNumber(a));
    } else {
      proc.ppl1_pages.erase(PageNumber(a));
    }
    u32 pte = 0;
    PageTableEditor ed(machine_.pm(), proc.cr3);
    if (ed.GetPte(a, &pte) && (pte & kPtePresent)) {
      SetPageUserBit(proc, a, ppl == 1);
    }
    ++marked;
  }
  Charge(config_.costs.ppl_mark_startup + marked * config_.costs.ppl_mark_per_page);
  ReturnFromGate(0);
}

void Kernel::SysSetCallGate(u32 function) {
  Process& proc = *cur();
  if (proc.task_spl != 2) {
    ReturnFromGate(kErrPerm);
    return;
  }
  u16 slot = gdt().AllocateSlot(kGdtFirstDynamic);
  gdt().Set(slot, SegmentDescriptor::MakeCallGate(kAppCsSel.raw(), function, /*dpl=*/3));
  ReturnFromGate(Selector::FromIndex(slot, 3).raw());
}

}  // namespace palladium
