#include "src/kernel/page_alloc.h"

#include <utility>

#include "src/hw/paging.h"

namespace palladium {

FrameAllocator::FrameAllocator(PhysicalMemory& pm, u32 first_frame_addr) : pm_(pm) {
  const u32 first = PageAlignUp(first_frame_addr);
  for (u32 addr = first; addr + kPageSize <= pm.size(); addr += kPageSize) {
    free_list_.push_back(addr);
  }
  // LIFO order with low addresses on top, for deterministic layouts.
  for (u32 i = 0; i < free_list_.size() / 2; ++i) {
    std::swap(free_list_[i], free_list_[free_list_.size() - 1 - i]);
  }
  total_ = static_cast<u32>(free_list_.size());
}

u32 FrameAllocator::Alloc() {
  if (free_list_.empty()) return 0;
  u32 frame = free_list_.back();
  free_list_.pop_back();
  pm_.Fill(frame, 0, kPageSize);
  return frame;
}

void FrameAllocator::Free(u32 frame_addr) { free_list_.push_back(frame_addr & kPteFrameMask); }

}  // namespace palladium
