// Section 5.1 micro-measurements (the paper's in-text numbers):
//   - dlopen vs seg_dlopen loading cost (400 vs 420 us),
//   - set_range PPL-marking cost (3000-5000 startup + 45 cycles/page),
//   - SIGSEGV delivery latency for offending user extensions (~3,325 cycles),
//   - kernel #GP processing for offending kernel extensions (~1,020 cycles),
//   - segment-register load cost (12 cycles measured vs 2-3 in the manual).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/hw/bare_machine.h"

namespace palladium {
namespace {

BenchJson& Json() {
  static BenchJson json("micro");
  return json;
}

// dlopen vs seg_dlopen: measured around the syscalls from inside the app.
void BenchLoadingCosts() {
  BenchSystem sys;
  sys.RegisterObject("ext", ".global f\nf:\n  ret\n");
  sys.RunApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  ; pair 1: plain dlopen
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_DLOPEN_UNPROT, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  ; pair 2: seg_dlopen
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "ext"
)");
  u64 dlopen_c = sys.PairedDelta(1);
  u64 seg_dlopen_c = sys.PairedDelta(2);
  Json().Set("dlopen_cycles", dlopen_c);
  Json().Set("seg_dlopen_cycles", seg_dlopen_c);
  std::printf("Module loading:\n");
  std::printf("  dlopen:      %8llu cycles (%.1f us)   [paper: ~400 us]\n",
              static_cast<unsigned long long>(dlopen_c), CyclesToUs(dlopen_c));
  std::printf("  seg_dlopen:  %8llu cycles (%.1f us)   [paper: ~420 us]\n",
              static_cast<unsigned long long>(seg_dlopen_c), CyclesToUs(seg_dlopen_c));
  sys.EmitSystemMetrics(&Json());
}

// set_range marking cost across page counts.
void BenchPplMarking() {
  std::printf("\nset_range PPL marking (paper: 3000-5000 startup + 45 cycles/page):\n");
  for (u32 pages : {1u, 10u, 64u}) {
    BenchSystem sys;
    sys.RunApp(R"(
  .equ LEN, )" + std::to_string(pages * kPageSize) +
               R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_MMAP, %eax
  mov $0, %ebx
  mov $LEN, %ecx
  mov $3, %edx
  int $INT_SYSCALL
  mov %eax, %ebp
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_SET_RANGE, %eax
  mov %ebp, %ebx
  mov $LEN, %ecx
  mov $1, %edx
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
)");
    u64 cost = sys.PairedDelta(1);
    std::printf("  %3u pages: %6llu cycles (%.2f us)\n", pages,
                static_cast<unsigned long long>(cost), CyclesToUs(cost));
  }
}

// SIGSEGV delivery: cycles from the offending extension access to the first
// instruction of the application's handler.
void BenchSigsegvDelivery() {
  BenchSystem sys;
  sys.RegisterObject("evil", R"(
  .global corrupt
corrupt:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ebx
  sti $1, 0(%ebx)       ; write the app's PPL 0 page -> page fault
  pop %ebp
  ret
)");
  sys.RunApp(R"(
  .global main
main:
  mov $SYS_SIGACTION, %eax
  mov $11, %ebx
  mov $handler, %ecx
  int $INT_SYSCALL
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  ; mark, then trigger the violation; the handler marks again.
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push $secret
  call *%edi
  pop %ecx
  mov $SYS_EXIT, %eax
  mov $1, %ebx
  int $INT_SYSCALL
handler:
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
secret:
  .long 7
extname:
  .asciz "evil"
fnname:
  .asciz "corrupt"
)");
  // PairedDelta(1) spans: protected call entry + fault + delivery; the
  // dominant component is the fault-to-handler path.
  u64 span = sys.PairedDelta(1);
  Json().Set("sigsegv_delivery_cycles", span);
  std::printf("\nSIGSEGV delivery (offending user extension):\n");
  std::printf("  violation-to-handler span: %llu cycles   [paper: 3,325]\n",
              static_cast<unsigned long long>(span));
}

// Kernel extension #GP processing cost.
void BenchKextAbort() {
  Machine machine;
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);
  AssembleError aerr;
  auto obj = Assemble(R"(
  .global escape
escape:
  mov $0x00F00000, %ebx
  ld 0(%ebx), %eax
  ret
)",
                      &aerr);
  std::string diag;
  auto ext = kext.LoadExtension("bad", *obj, &diag);
  auto fid = kext.FindFunction("escape");
  auto r = kext.Invoke(*fid, 0);
  Json().Set("kext_abort_cycles", r.cycles);
  std::printf("\nKernel-extension protection fault:\n");
  std::printf("  abort processing span: %llu cycles   [paper: 1,020 + exception]\n",
              static_cast<unsigned long long>(r.cycles));
  std::printf("  (aborted: %s)\n", r.ok ? "no!" : r.error.c_str());
}

// Segment register load: measured by a loop of mov-to-%es on a bare machine.
void BenchSegLoad() {
  BareMachine bm;
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $35, %ebx        ; kData3 selector (index 4, RPL 3)... DPL3 ok at CPL0? no: use RPL 0
  mov $32, %ebx        ; index 4, RPL 0 is invalid for DPL3; use kData0: index 2
  mov $16, %ebx
  mov $100, %ecx
loop:
  mov %ebx, %es
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)",
                            0x10000, &diag);
  if (!img) {
    std::fprintf(stderr, "%s\n", diag.c_str());
    return;
  }
  bm.Start(*img->Lookup("main"), 0, 0x80000);
  u64 before = bm.cpu().cycles();
  bm.Run(1'000'000);
  u64 total = bm.cpu().cycles() - before;
  Json().Set("seg_load_loop_avg_cycles", static_cast<double>(total) / 100.0);
  // Subtract the loop bookkeeping (dec+cmp+jne+1 per iteration measured
  // separately would be cleaner; the loop body is 4 insns of which one is
  // the segment load).
  std::printf("\nSegment register load (100 loads in a loop):\n");
  std::printf("  average per iteration: %.1f cycles (load itself: ~%u)\n",
              static_cast<double>(total) / 100.0, bm.cpu().cycle_model().seg_load);
  std::printf("  [paper: 12 cycles measured, 2-3 in the manual]\n");
}

}  // namespace
}  // namespace palladium

int main() {
  using namespace palladium;
  std::printf("Section 5.1 micro-benchmarks (Pentium-200 model)\n\n");
  BenchLoadingCosts();
  BenchPplMarking();
  BenchSigsegvDelivery();
  BenchKextAbort();
  BenchSegLoad();
  std::printf("wrote %s\n", Json().Write().c_str());
  return 0;
}
