// Dataplane throughput: packets/sec through the protected-extension filter
// path, interrupt-driven end to end (NIC RX IRQ -> NAPI poll -> SPL 1
// compiled filter, a batch of frames per protected crossing -> per-process
// queue -> worker pkt_recvm/pkt_sendm -> TX ring), versus the
// run-to-completion baseline (the kernel invoking the same protected filter
// in a tight loop with no devices, no scheduler, no context switches).
// The difference is the asynchronous machinery's overhead; the absolute
// number is the paper-machine (200 MHz) packet rate. Writes
// BENCH_dataplane.json.
//
// Every run also executes the PR 3 oracle pipeline (single queue, IRQ per
// packet, one crossing + one pkt_recv/pkt_send pair per frame) under the
// same offered load and reports it as no_napi_* — the regression this PR
// fixes stays measured. PALLADIUM_NO_NAPI=1 makes the oracle the main run.
//
// `--smp N` runs the same pipeline on an N-vCPU machine (per-core NIC
// queues, hardware RSS spreading flows across cores, workers spread by the
// SMP scheduler) against a saturating arrival rate, compares it with the
// identical-load 1-vCPU run, and enforces the scaling and absolute-rate
// acceptance gates (PALLADIUM_BENCH_MIN_SMP_SCALE, PALLADIUM_BENCH_MIN_SMP_PPS).
// The N=1 gates: zero queue-full drops at the default offered load and at
// most one NIC IRQ per 10 packets served (PALLADIUM_BENCH_MAX_IRQ_RATIO).
// The absolute-pps gate reads PALLADIUM_BENCH_MIN_PPS (default 10000)
// so loaded CI runners can relax it without patching the binary; the JSON
// carries the threshold and the margin either way.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/filter/filter.h"
#include "src/hw/nic.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"
#include "src/obs/profile.h"
#include "src/obs/trace.h"
#include "src/web/server_sim.h"

using namespace palladium;

namespace {

constexpr char kFilterText[] = "ip.proto == 6 && ip.src == 10.20.30.40 && tcp.dport == 8080";

// The source port is free under the filter; varying it gives the NIC's RSS
// hash real entropy, so multi-queue runs spread arrivals across cores.
std::vector<u8> MatchingFrame(u16 src_port) {
  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.src_ip = 0x0A141E28;  // 10.20.30.40
  spec.src_port = src_port;
  spec.dst_port = 8080;
  spec.payload_len = 64;
  return BuildPacket(spec);
}

// Run-to-completion baseline: same protected filter, no interrupts.
double BaselineCyclesPerPacket(u32 packets) {
  MachineConfig mcfg;
  mcfg.num_cpus = 1;
  Machine machine(mcfg);
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);
  std::string err;
  auto expr = ParseFilter(kFilterText, &err);
  if (!expr) {
    std::fprintf(stderr, "parse filter: %s\n", err.c_str());
    std::exit(1);
  }
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(*expr), &aerr);
  if (!obj) {
    std::fprintf(stderr, "assemble filter: %s\n", aerr.ToString().c_str());
    std::exit(1);
  }
  std::string diag;
  auto ext = kext.LoadExtension("filter", *obj, &diag);
  auto fid = ext ? kext.FindFunction("filter:filter_run") : std::nullopt;
  if (!ext || !fid) {
    std::fprintf(stderr, "baseline setup failed: %s\n", diag.c_str());
    std::exit(1);
  }
  auto frame = MatchingFrame(1024);
  const u32 len = static_cast<u32>(frame.size());
  u64 cycles = 0;
  for (u32 i = 0; i < packets; ++i) {
    kext.WriteShared(*ext, 0, &len, 4);
    kext.WriteShared(*ext, 4, frame.data(), len);
    auto r = kext.Invoke(*fid, len);
    if (!r.ok || r.value != 1) {
      std::fprintf(stderr, "baseline invoke failed\n");
      std::exit(1);
    }
    cycles += r.cycles;
  }
  return static_cast<double>(cycles) / packets;
}

struct DataplaneRun {
  u64 served = 0;
  u64 cycles = 0;
  u64 busy_cycles = 0;
  double pps = 0;       // served per busy cycle (machine-efficiency view)
  double wire_pps = 0;  // served per wall cycle (sustained-rate view)
  u64 nic_irqs = 0;
  u64 tx_completion_irqs = 0;
  u64 timer_irqs = 0;
  u64 preemptions = 0;
  u64 context_switches = 0;
  u64 rx_dropped = 0;
  u64 queue_dropped = 0;
  u64 filter_invocations = 0;
  u64 filter_frames = 0;
  u64 filter_batches = 0;
  u64 filter_calls_avoided = 0;
  u64 napi_polls = 0;
  u64 napi_frames = 0;
  u64 idle_cycles = 0;
  u64 steals = 0;
  u64 shootdown_ipis = 0;
  u64 backlog_dropped = 0;
  u32 workers_exited = 0;
  // Host wall-clock spent inside the scheduler run — how fast the simulator
  // itself chewed through the workload, as opposed to every other field,
  // which is in simulated cycles. Report-only: host time is machine
  // dependent, so the regression gate never compares it across runners.
  double host_wall_seconds = 0;
};

// `oracle` selects the PR 3 pipeline: single queue, an IRQ per DMA'd frame,
// one protected crossing and one pkt_recv/pkt_send pair per packet. The
// default is the production pipeline: per-core queues with RSS, NAPI
// polling under interrupt moderation, batched crossings, and workers moving
// frame vectors with pkt_recvm/pkt_sendm.
// Optional telemetry attachments for one run; all pure observers, so an
// attached run retires the exact same simulated cycles as a bare one.
struct ObsAttach {
  obs::CycleProfile* profiler = nullptr;
  obs::FlightRecorder* recorder = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

DataplaneRun RunInterruptDriven(u32 packets, u32 workers, u64 inter_arrival, u32 num_cpus,
                                bool oracle, const ObsAttach& telemetry = {}) {
  MachineConfig mcfg;
  mcfg.num_cpus = num_cpus;  // explicit, so the comparison ignores PALLADIUM_SMP
  Machine machine(mcfg);
  Kernel::Config kcfg;
  kcfg.timer_period_cycles = 25'000;
  Kernel kernel(machine, kcfg);
  KernelExtensionManager kext(kernel);
  Scheduler::Config scfg;
  scfg.slice_cycles = 80'000;
  Scheduler sched(kernel, scfg);

  std::string diag;
  auto img =
      AssembleAndLink(oracle ? kPktEchoWorkerSource : kPktEchoMWorkerSource, kUserTextBase,
                      {}, &diag);
  if (!img) {
    std::fprintf(stderr, "assemble worker: %s\n", diag.c_str());
    std::exit(1);
  }
  std::vector<Pid> pids;
  for (u32 w = 0; w < workers; ++w) {
    Pid pid = kernel.CreateProcess();
    if (pid == 0 || !kernel.LoadUserImage(pid, *img, "main", &diag)) {
      std::fprintf(stderr, "load worker: %s\n", diag.c_str());
      std::exit(1);
    }
    pids.push_back(pid);
    sched.AddProcess(pid);
  }

  Nic nic(machine.pm(), kernel.pic(), kIrqNic);
  PacketDataplane::Config dcfg;
  if (oracle) {
    dcfg.napi = false;
    dcfg.filter_batch = 1;
    dcfg.queues = 1;
  } else {
    dcfg.queues = num_cpus;
    dcfg.napi = true;
    dcfg.filter_batch = 32;
    // One RX IRQ per queue per 16k-cycle window (80us at 200 MHz): far
    // inside the ring's holding capacity at the offered rates, and an order
    // of magnitude fewer dispatches than IRQ-per-packet.
    dcfg.rx_irq_moderation = 16'000;
  }
  PacketDataplane dataplane(kernel, kext, nic, dcfg);
  if (!dataplane.AddFlow("filter", kFilterText, pids, &diag)) {
    std::fprintf(stderr, "flow: %s\n", diag.c_str());
    std::exit(1);
  }

  if (telemetry.recorder != nullptr) {
    telemetry.recorder->Reset(machine.num_cpus() + nic.num_queues());
    for (u32 q = 0; q < nic.num_queues(); ++q) {
      telemetry.recorder->SetTrackName(machine.num_cpus() + q,
                                       "nic.q" + std::to_string(q));
    }
    nic.set_recorder(telemetry.recorder, machine.num_cpus());
  }
  if (telemetry.profiler != nullptr) {
    telemetry.profiler->Reset(machine.num_cpus(),
                              machine.cpu(0).cycle_model().tlb_miss_penalty);
  }
  kernel.AttachObservability(telemetry.recorder, telemetry.profiler);

  u64 at = 5'000;
  for (u32 i = 0; i < packets; ++i) {
    auto frame = MatchingFrame(static_cast<u16>(1024 + (i & 1023)));
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += inter_arrival;
  }
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dataplane.Shutdown();
    return true;
  });

  const auto host_start = std::chrono::steady_clock::now();
  auto result = sched.RunAll(20'000'000'000ull);
  const auto host_end = std::chrono::steady_clock::now();
  nic.FlushTx();  // retire DMA still in flight when the last worker exited

  DataplaneRun out;
  out.served = dataplane.stats().tx_frames;
  out.cycles = result.cycles;
  out.idle_cycles = sched.stats().idle_cycles;
  // Throughput over the busy period only (idle fast-forward cycles are the
  // machine waiting for the wire, not work) — obs::BusyCycles is the one
  // shared definition, also used by server_sim and the profiler's report.
  out.busy_cycles =
      obs::BusyCycles(machine.num_cpus(), result.cycles, sched.stats().idle_cycles);
  const double cpp =
      out.served > 0 ? static_cast<double>(out.busy_cycles) / out.served : 0;
  out.pps = cpp > 0 ? kCpuMhz * 1e6 / cpp : 0;
  out.wire_pps =
      out.cycles > 0 ? static_cast<double>(out.served) * kCpuMhz * 1e6 / out.cycles : 0;
  for (u32 c = 0; c < machine.num_cpus(); ++c) {
    out.nic_irqs += kernel.pic(c).delivered(kIrqNic);
    out.tx_completion_irqs += kernel.pic(c).delivered(kIrqNicTx);
    out.timer_irqs += kernel.pic(c).delivered(kIrqTimer);
  }
  out.preemptions = sched.stats().preemptions;
  out.context_switches = sched.stats().context_switches;
  out.rx_dropped = nic.stats().rx_dropped;
  out.queue_dropped = dataplane.stats().dropped_queue_full;
  out.filter_invocations = dataplane.stats().filter_invocations;
  out.filter_frames = dataplane.stats().filter_frames;
  out.filter_batches = dataplane.stats().filter_batches;
  out.filter_calls_avoided = dataplane.stats().filter_calls_avoided;
  out.napi_polls = dataplane.stats().napi_polls;
  out.napi_frames = dataplane.stats().napi_frames;
  out.steals = sched.stats().steals;
  out.shootdown_ipis = kernel.smp_stats().shootdown_ipis;
  out.backlog_dropped = dataplane.stats().dropped_backlog_full;
  out.workers_exited = result.exited;
  out.host_wall_seconds =
      std::chrono::duration<double>(host_end - host_start).count();
  if (telemetry.metrics != nullptr) {
    telemetry.metrics->CollectMachine(kernel, &sched);
    telemetry.metrics->CollectNic(nic);
    telemetry.metrics->CollectDataplane(dataplane);
    if (telemetry.profiler != nullptr) telemetry.metrics->CollectProfile(*telemetry.profiler);
    if (telemetry.recorder != nullptr) telemetry.metrics->CollectRecorder(*telemetry.recorder);
  }
  return out;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

// `--soak [requests]`: the webserver soak — a long run of distinct client
// flows (one 5-tuple per client, 20% of requests riding keep-alive
// connections) through the multi-queue/NAPI dataplane on an SMP machine,
// with request latency percentiles. Writes BENCH_dataplane_soak.json.
int RunSoak(u32 requests, u32 smp) {
  MultiServerConfig cfg;
  cfg.smp = smp;
  cfg.workers = 2 * smp;
  cfg.total_requests = requests;
  // 80% fresh connections / 20% keep-alive reuse at any scale; the default
  // 150k-request soak sees 120k distinct client flows.
  cfg.clients = std::max(1u, requests - requests / 5);
  cfg.inter_arrival_cycles = 3'000;  // ~66k req/s offered at 200 MHz
  cfg.cycle_budget = 60'000'000'000ull;
  cfg.steering = FlowSteering::kFlowHash;
  cfg.queues = smp;
  cfg.napi = true;
  cfg.filter_batch = 32;
  cfg.rx_irq_moderation = 16'000;
  obs::CycleProfile profiler;
  obs::MetricsRegistry metrics;
  cfg.profiler = &profiler;
  cfg.metrics = &metrics;

  const bool no_napi_env = std::getenv("PALLADIUM_NO_NAPI") != nullptr;
  std::printf("soak (%s): %u requests, %u distinct client flows, %u vCPUs, %u workers...\n",
              no_napi_env ? "oracle: IRQ per packet" : "NAPI + batched crossings", requests,
              cfg.clients, smp, cfg.workers);
  MultiServerResult r = RunMultiWorkerServer(cfg);

  const double us_per_cycle = 1.0 / kCpuMhz;
  std::printf("\n%-44s %14s\n", "metric", "value");
  std::printf("%-44s %14llu\n", "requests served", static_cast<unsigned long long>(r.served));
  std::printf("%-44s %14llu\n", "distinct connections",
              static_cast<unsigned long long>(r.connections));
  std::printf("%-44s %14llu\n", "keep-alive reuses",
              static_cast<unsigned long long>(r.keepalive_reuses));
  std::printf("%-44s %14.0f\n", "requests/sec (busy, 200 MHz)", r.requests_per_sec);
  std::printf("%-44s %14llu\n", "NIC RX IRQs", static_cast<unsigned long long>(r.nic_irqs));
  std::printf("%-44s %14llu\n", "queue-full drops",
              static_cast<unsigned long long>(r.queue_full_drops));
  std::printf("%-44s %14.1f\n", "latency p50 (us)", r.latency_p50_cycles * us_per_cycle);
  std::printf("%-44s %14.1f\n", "latency p90 (us)", r.latency_p90_cycles * us_per_cycle);
  std::printf("%-44s %14.1f\n", "latency p99 (us)", r.latency_p99_cycles * us_per_cycle);
  std::printf("%-44s %14.1f\n", "latency max (us)", r.latency_max_cycles * us_per_cycle);

  BenchJson json("dataplane_soak");
  json.Set("requests_offered", static_cast<u64>(cfg.total_requests));
  json.Set("requests_served", r.served);
  json.Set("distinct_clients", static_cast<u64>(cfg.clients));
  json.Set("connections", r.connections);
  json.Set("keepalive_reuses", r.keepalive_reuses);
  json.Set("requests_per_sec", r.requests_per_sec);
  json.Set("queue_full_drops", r.queue_full_drops);
  json.Set("nic_irqs", r.nic_irqs);
  json.Set("timer_irqs", r.timer_irqs);
  json.Set("filter_invocations", r.filter_invocations);
  json.Set("latency_p50_cycles", r.latency_p50_cycles);
  json.Set("latency_p90_cycles", r.latency_p90_cycles);
  json.Set("latency_p99_cycles", r.latency_p99_cycles);
  json.Set("latency_max_cycles", r.latency_max_cycles);
  json.Set("latency_p50_us", r.latency_p50_cycles * us_per_cycle);
  json.Set("latency_p99_us", r.latency_p99_cycles * us_per_cycle);
  json.Set("total_cycles", r.cycles);
  json.Set("idle_cycles", r.idle_cycles);
  json.Set("smp_cpus", static_cast<u64>(r.cpus));
  json.Set("workers", static_cast<u64>(cfg.workers));
  json.Set("no_napi_mode", no_napi_env ? 1.0 : 0.0);
  EmitMetrics(metrics, &json);
  const std::string path = json.Write();
  std::printf("\nwrote %s\n", path.c_str());

  if (!r.ok) {
    std::fprintf(stderr, "FAIL: soak did not serve everything: %s\n", r.diag.c_str());
    return 1;
  }
  if (r.queue_full_drops != 0) {
    std::fprintf(stderr, "FAIL: %llu queue-full drops during the soak (want 0)\n",
                 static_cast<unsigned long long>(r.queue_full_drops));
    return 1;
  }
  if (r.connections != cfg.clients || r.keepalive_reuses != requests - cfg.clients) {
    std::fprintf(stderr, "FAIL: connection table saw %llu conns / %llu reuses (want %u / %u)\n",
                 static_cast<unsigned long long>(r.connections),
                 static_cast<unsigned long long>(r.keepalive_reuses), cfg.clients,
                 requests - cfg.clients);
    return 1;
  }
  std::printf("soak gates: all %llu served, zero drops, %llu keep-alive reuses: ok\n",
              static_cast<unsigned long long>(r.served),
              static_cast<unsigned long long>(r.keepalive_reuses));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  u32 packets = 20'000;
  u32 smp = 1;
  bool smp_given = false;
  bool soak = false;
  bool profile = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--smp") == 0) {
      if (i + 1 >= argc || std::atoi(argv[i + 1]) <= 0) {
        std::fprintf(stderr, "usage: %s [packets] [--smp N] [--soak [requests]] [--profile]\n",
                     argv[0]);
        return 2;
      }
      smp = static_cast<u32>(std::atoi(argv[++i]));
      smp_given = true;
      if (smp > kMaxCpus) {
        // The Machine clamps to kMaxCpus; refusing here keeps the printed
        // configuration and the JSON honest about what actually ran.
        std::fprintf(stderr, "--smp %u exceeds the machine maximum of %u vCPUs\n", smp,
                     kMaxCpus);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
      if (i + 1 < argc && std::atoi(argv[i + 1]) > 0) {
        packets = static_cast<u32>(std::atoi(argv[++i]));
      } else {
        packets = 150'000;  // the full soak: 120k distinct client flows
      }
    } else if (std::atoi(argv[i]) > 0) {
      packets = static_cast<u32>(std::atoi(argv[i]));
    } else {
      // A typo must not silently become packets=0 and disarm both gates.
      std::fprintf(stderr,
                   "unrecognized argument '%s'; usage: %s [packets] [--smp N] [--soak "
                   "[requests]] [--profile]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  if (soak) {
    // The soak needs parallel cores to absorb the offered rate; default to a
    // 4-vCPU machine unless --smp pinned one explicitly.
    return RunSoak(packets, smp_given ? smp : 4);
  }
  const u32 kWorkers = smp > 1 ? 2 * smp : 4;
  // Default mode offers ~133k pps at 200 MHz — the load the old pipeline
  // dropped a third of. SMP mode offers 1.33M pps: well past the N=4
  // acceptance bar of 400k and ~3x one NAPI core's sustainable rate
  // (~430k), so the 1-vCPU reference saturates and the scaling ratio
  // measures added cores, not the offered rate.
  const u64 inter_arrival = smp > 1 ? 150 : 1'500;
  const double min_pps = EnvDouble("PALLADIUM_BENCH_MIN_PPS", 10'000.0);
  const bool no_napi_env = std::getenv("PALLADIUM_NO_NAPI") != nullptr;

  std::printf("filter: %s\n", kFilterText);
  std::printf("baseline (run-to-completion, no interrupts): measuring...\n");
  const double base_cpp = BaselineCyclesPerPacket(std::min(packets, 2'000u));
  const double base_pps = kCpuMhz * 1e6 / base_cpp;

  std::printf("dataplane (%s, %u vCPU(s), %u workers, %u packets): running...\n",
              no_napi_env ? "oracle: IRQ per packet" : "NAPI + batched crossings", smp,
              kWorkers, packets);
  // Telemetry rides on the main run unconditionally: observation is free in
  // simulated time, so the gated pps is measured with it enabled.
  obs::CycleProfile profiler;
  obs::FlightRecorder recorder;
  obs::MetricsRegistry metrics;
  ObsAttach telemetry;
  telemetry.profiler = &profiler;
  telemetry.recorder = &recorder;
  telemetry.metrics = &metrics;
  DataplaneRun run =
      RunInterruptDriven(packets, kWorkers, inter_arrival, smp, no_napi_env, telemetry);
  std::printf("oracle run (IRQ per packet, crossing per frame, same load): running...\n");
  DataplaneRun oracle =
      no_napi_env ? run : RunInterruptDriven(packets, kWorkers, inter_arrival, smp, true);
  DataplaneRun uni;  // same offered load on one vCPU (the scaling denominator)
  double scaling = 1.0;
  if (smp > 1) {
    std::printf("reference run (same load, 1 vCPU): running...\n");
    uni = RunInterruptDriven(packets, kWorkers, inter_arrival, 1, no_napi_env);
    // Sustained-rate scaling: what the wire actually got through, per wall
    // cycle, N vCPUs vs one, under identical offered load.
    scaling = uni.wire_pps > 0 ? run.wire_pps / uni.wire_pps : 0;
  }
  const double dp_cpp = run.served > 0
                            ? static_cast<double>(run.busy_cycles) / run.served
                            : 0;

  std::printf("\n%-44s %14s\n", "metric", "value");
  std::printf("%-44s %14.1f\n", "baseline filter cycles/packet", base_cpp);
  std::printf("%-44s %14.0f\n", "baseline packets/sec (200 MHz)", base_pps);
  std::printf("%-44s %14llu\n", "dataplane packets served",
              static_cast<unsigned long long>(run.served));
  std::printf("%-44s %14.1f\n", "dataplane cycles/packet (busy)", dp_cpp);
  std::printf("%-44s %14.0f\n", "dataplane packets/sec (200 MHz)", run.pps);
  std::printf("%-44s %14.0f\n", "dataplane wire packets/sec", run.wire_pps);
  std::printf("%-44s %14.1f\n", "async overhead cycles/packet", dp_cpp - base_cpp);
  std::printf("%-44s %14llu\n", "NIC RX IRQs", static_cast<unsigned long long>(run.nic_irqs));
  std::printf("%-44s %14llu\n", "NAPI polls", static_cast<unsigned long long>(run.napi_polls));
  std::printf("%-44s %14llu\n", "filter crossings",
              static_cast<unsigned long long>(run.filter_invocations));
  std::printf("%-44s %14llu\n", "frames through crossings",
              static_cast<unsigned long long>(run.filter_frames));
  std::printf("%-44s %14llu\n", "crossings avoided (backpressure)",
              static_cast<unsigned long long>(run.filter_calls_avoided));
  std::printf("%-44s %14llu\n", "timer IRQs", static_cast<unsigned long long>(run.timer_irqs));
  std::printf("%-44s %14llu\n", "context switches",
              static_cast<unsigned long long>(run.context_switches));
  std::printf("%-44s %14llu\n", "preemptions",
              static_cast<unsigned long long>(run.preemptions));
  std::printf("%-44s %14llu\n", "RX ring drops",
              static_cast<unsigned long long>(run.rx_dropped));
  std::printf("%-44s %14llu\n", "queue-full drops",
              static_cast<unsigned long long>(run.queue_dropped));
  std::printf("%-44s %14llu\n", "idle cycles",
              static_cast<unsigned long long>(run.idle_cycles));
  if (!no_napi_env) {
    std::printf("%-44s %14llu\n", "oracle packets served",
                static_cast<unsigned long long>(oracle.served));
    std::printf("%-44s %14llu\n", "oracle queue-full drops",
                static_cast<unsigned long long>(oracle.queue_dropped));
    std::printf("%-44s %14llu\n", "oracle NIC RX IRQs",
                static_cast<unsigned long long>(oracle.nic_irqs));
    std::printf("%-44s %14.0f\n", "oracle wire packets/sec", oracle.wire_pps);
  }
  if (smp > 1) {
    std::printf("%-44s %14llu\n", "work steals", static_cast<unsigned long long>(run.steals));
    std::printf("%-44s %14llu\n", "shootdown IPIs",
                static_cast<unsigned long long>(run.shootdown_ipis));
    std::printf("%-44s %14.0f\n", "1-vCPU wire packets/sec (same load)", uni.wire_pps);
    std::printf("%-44s %14llu\n", "1-vCPU packets served",
                static_cast<unsigned long long>(uni.served));
    std::printf("%-44s %14llu\n", "1-vCPU queue drops",
                static_cast<unsigned long long>(uni.queue_dropped));
    std::printf("%-44s %14.2f\n", "SMP scaling (wire pps vs 1 vCPU)", scaling);
    std::printf("%-44s %14.3f\n", "host wall seconds (N-vCPU run)", run.host_wall_seconds);
    std::printf("%-44s %14.0f\n", "host packets/sec (wall clock)",
                run.host_wall_seconds > 0 ? run.served / run.host_wall_seconds : 0.0);
  }
  if (profile) {
    std::printf("\n");
    profiler.PrintBreakdown(stdout, run.served, "pkt");
  }

  BenchJson json(smp > 1 ? "dataplane_smp" + std::to_string(smp) : "dataplane");
  json.Set("packets_offered", static_cast<u64>(packets));
  json.Set("packets_served", run.served);
  json.Set("baseline_cycles_per_packet", base_cpp);
  json.Set("baseline_packets_per_sec", base_pps);
  json.Set("dataplane_cycles_per_packet", dp_cpp);
  json.Set("dataplane_packets_per_sec", run.pps);
  json.Set("wire_packets_per_sec", run.wire_pps);
  json.Set("async_overhead_cycles_per_packet", dp_cpp - base_cpp);
  json.Set("nic_irqs", run.nic_irqs);
  json.Set("tx_completion_irqs", run.tx_completion_irqs);
  json.Set("napi_polls", run.napi_polls);
  json.Set("napi_frames", run.napi_frames);
  json.Set("timer_irqs", run.timer_irqs);
  json.Set("context_switches", run.context_switches);
  json.Set("preemptions", run.preemptions);
  json.Set("rx_ring_drops", run.rx_dropped);
  json.Set("queue_full_drops", run.queue_dropped);
  json.Set("filter_invocations", run.filter_invocations);
  json.Set("filter_frames", run.filter_frames);
  json.Set("filter_batches", run.filter_batches);
  json.Set("filter_calls_avoided", run.filter_calls_avoided);
  json.Set("workers", kWorkers);
  json.Set("workers_exited", static_cast<u64>(run.workers_exited));
  json.Set("total_cycles", run.cycles);
  json.Set("idle_cycles", run.idle_cycles);
  json.Set("min_pps", min_pps);
  json.Set("pps_margin", run.pps - min_pps);
  json.Set("smp_cpus", smp);
  json.Set("no_napi_mode", no_napi_env ? 1.0 : 0.0);
  if (!no_napi_env) {
    json.Set("no_napi_packets_served", oracle.served);
    json.Set("no_napi_queue_full_drops", oracle.queue_dropped);
    json.Set("no_napi_nic_irqs", oracle.nic_irqs);
    json.Set("no_napi_wire_packets_per_sec", oracle.wire_pps);
    json.Set("no_napi_packets_per_sec", oracle.pps);
  }
  if (smp > 1) {
    json.Set("uni_packets_per_sec", uni.pps);
    json.Set("uni_wire_packets_per_sec", uni.wire_pps);
    json.Set("smp_scaling", scaling);
    json.Set("work_steals", run.steals);
    json.Set("shootdown_ipis", run.shootdown_ipis);
    // Host-side throughput of the simulator itself, report-only (host time
    // is runner dependent; check_bench_regression.py gates only on keys the
    // committed baseline carries, and these are deliberately absent there).
    json.Set("host_wall_seconds", run.host_wall_seconds);
    json.Set("host_packets_per_sec",
             run.host_wall_seconds > 0 ? run.served / run.host_wall_seconds : 0.0);
    json.Set("host_uni_wall_seconds", uni.host_wall_seconds);
    json.Set("host_cpus", static_cast<u64>(std::thread::hardware_concurrency()));
  }
  EmitMetrics(metrics, &json);
  const std::string path = json.Write();
  std::printf("\nwrote %s\n", path.c_str());

  const bool meaningful = packets >= 1'000;
  if (meaningful && run.pps < min_pps) {
    std::fprintf(stderr, "FAIL: %.0f pps through the protected path (< %.0f)\n", run.pps,
                 min_pps);
    return 1;
  }
  if (run.workers_exited != kWorkers) {
    std::fprintf(stderr, "FAIL: only %u/%u workers exited\n", run.workers_exited, kWorkers);
    return 1;
  }
  if (meaningful && !no_napi_env && smp == 1) {
    // The N=1 acceptance gates this PR exists for: the offered load the old
    // pipeline dropped a third of must now be served loss-free, with an
    // order of magnitude fewer interrupts.
    if (run.queue_dropped != 0 || run.rx_dropped != 0) {
      std::fprintf(stderr, "FAIL: %llu queue-full + %llu ring drops at N=1 (want 0)\n",
                   static_cast<unsigned long long>(run.queue_dropped),
                   static_cast<unsigned long long>(run.rx_dropped));
      return 1;
    }
    const double max_irq_ratio = EnvDouble("PALLADIUM_BENCH_MAX_IRQ_RATIO", 0.1);
    if (run.served > 0 &&
        static_cast<double>(run.nic_irqs) > max_irq_ratio * static_cast<double>(run.served)) {
      std::fprintf(stderr, "FAIL: %llu NIC IRQs for %llu packets (> %.2f per packet)\n",
                   static_cast<unsigned long long>(run.nic_irqs),
                   static_cast<unsigned long long>(run.served), max_irq_ratio);
      return 1;
    }
    std::printf("N=1 gates: zero drops, %.3f IRQs/packet (<= %.2f): ok\n",
                static_cast<double>(run.nic_irqs) / static_cast<double>(run.served),
                max_irq_ratio);
  }
  if (smp > 1 && meaningful) {
    const double min_scale =
        EnvDouble("PALLADIUM_BENCH_MIN_SMP_SCALE", smp >= 4 ? 1.6 : 1.2);
    if (scaling < min_scale) {
      std::fprintf(stderr, "FAIL: SMP scaling %.2fx at %u vCPUs (< %.2fx)\n", scaling, smp,
                   min_scale);
      return 1;
    }
    std::printf("SMP scaling gate (>= %.2fx at %u vCPUs): %.2fx ok\n", min_scale, smp,
                scaling);
    if (!no_napi_env && smp >= 4) {
      const double min_smp_pps = EnvDouble("PALLADIUM_BENCH_MIN_SMP_PPS", 400'000.0);
      if (run.wire_pps < min_smp_pps) {
        std::fprintf(stderr, "FAIL: %.0f filtered pps at %u vCPUs (< %.0f)\n", run.wire_pps,
                     smp, min_smp_pps);
        return 1;
      }
      std::printf("N=%u rate gate (>= %.0f pps): %.0f ok\n", smp, min_smp_pps, run.wire_pps);
    }
  }
  std::printf("protected-path throughput >= %.0f packets/sec: %s\n", min_pps,
              meaningful && run.pps >= min_pps ? "yes" : "(run too small to judge)");
  return 0;
}
