// Dataplane throughput: packets/sec through the protected-extension filter
// path, interrupt-driven end to end (NIC RX IRQ -> SPL 1 compiled filter ->
// per-process queue -> worker pkt_recv/pkt_send -> TX ring), versus the
// run-to-completion baseline (the kernel invoking the same protected filter
// in a tight loop with no devices, no scheduler, no context switches).
// The difference is the asynchronous machinery's overhead; the absolute
// number is the paper-machine (200 MHz) packet rate. Writes
// BENCH_dataplane.json.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/filter/filter.h"
#include "src/hw/nic.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"

using namespace palladium;

namespace {

constexpr char kFilterText[] = "ip.proto == 6 && ip.src == 10.20.30.40 && tcp.dport == 8080";

std::vector<u8> MatchingFrame() {
  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.src_ip = 0x0A141E28;  // 10.20.30.40
  spec.dst_port = 8080;
  spec.payload_len = 64;
  return BuildPacket(spec);
}

// Run-to-completion baseline: same protected filter, no interrupts.
double BaselineCyclesPerPacket(u32 packets) {
  Machine machine;
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);
  std::string err;
  auto expr = ParseFilter(kFilterText, &err);
  if (!expr) {
    std::fprintf(stderr, "parse filter: %s\n", err.c_str());
    std::exit(1);
  }
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(*expr), &aerr);
  if (!obj) {
    std::fprintf(stderr, "assemble filter: %s\n", aerr.ToString().c_str());
    std::exit(1);
  }
  std::string diag;
  auto ext = kext.LoadExtension("filter", *obj, &diag);
  auto fid = ext ? kext.FindFunction("filter:filter_run") : std::nullopt;
  if (!ext || !fid) {
    std::fprintf(stderr, "baseline setup failed: %s\n", diag.c_str());
    std::exit(1);
  }
  auto frame = MatchingFrame();
  const u32 len = static_cast<u32>(frame.size());
  u64 cycles = 0;
  for (u32 i = 0; i < packets; ++i) {
    kext.WriteShared(*ext, 0, &len, 4);
    kext.WriteShared(*ext, 4, frame.data(), len);
    auto r = kext.Invoke(*fid, len);
    if (!r.ok || r.value != 1) {
      std::fprintf(stderr, "baseline invoke failed\n");
      std::exit(1);
    }
    cycles += r.cycles;
  }
  return static_cast<double>(cycles) / packets;
}

struct DataplaneRun {
  u64 served = 0;
  u64 cycles = 0;
  u64 nic_irqs = 0;
  u64 timer_irqs = 0;
  u64 preemptions = 0;
  u64 context_switches = 0;
  u64 rx_dropped = 0;
  u64 queue_dropped = 0;
  u64 filter_invocations = 0;
  u64 idle_cycles = 0;
  u32 workers_exited = 0;
};

DataplaneRun RunInterruptDriven(u32 packets, u32 workers, u64 inter_arrival) {
  Machine machine;
  Kernel::Config kcfg;
  kcfg.timer_period_cycles = 25'000;
  Kernel kernel(machine, kcfg);
  KernelExtensionManager kext(kernel);
  Scheduler::Config scfg;
  scfg.slice_cycles = 80'000;
  Scheduler sched(kernel, scfg);

  std::string diag;
  auto img = AssembleAndLink(kPktEchoWorkerSource, kUserTextBase, {}, &diag);
  if (!img) {
    std::fprintf(stderr, "assemble worker: %s\n", diag.c_str());
    std::exit(1);
  }
  std::vector<Pid> pids;
  for (u32 w = 0; w < workers; ++w) {
    Pid pid = kernel.CreateProcess();
    if (pid == 0 || !kernel.LoadUserImage(pid, *img, "main", &diag)) {
      std::fprintf(stderr, "load worker: %s\n", diag.c_str());
      std::exit(1);
    }
    pids.push_back(pid);
    sched.AddProcess(pid);
  }

  Nic nic(machine.pm(), kernel.pic(), kIrqNic);
  PacketDataplane dataplane(kernel, kext, nic);
  if (!dataplane.AddFlow("filter", kFilterText, pids, &diag)) {
    std::fprintf(stderr, "flow: %s\n", diag.c_str());
    std::exit(1);
  }

  auto frame = MatchingFrame();
  u64 at = 5'000;
  for (u32 i = 0; i < packets; ++i) {
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += inter_arrival;
  }
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dataplane.Shutdown();
    return true;
  });

  auto result = sched.RunAll(20'000'000'000ull);

  DataplaneRun out;
  out.served = dataplane.stats().tx_frames;
  out.cycles = result.cycles;
  out.nic_irqs = kernel.pic().delivered(kIrqNic);
  out.timer_irqs = kernel.pic().delivered(kIrqTimer);
  out.preemptions = sched.stats().preemptions;
  out.context_switches = sched.stats().context_switches;
  out.rx_dropped = nic.stats().rx_dropped;
  out.queue_dropped = dataplane.stats().dropped_queue_full;
  out.filter_invocations = dataplane.stats().filter_invocations;
  out.idle_cycles = sched.stats().idle_cycles;
  out.workers_exited = result.exited;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  u32 packets = 20'000;
  if (argc > 1) packets = static_cast<u32>(std::atoi(argv[1]));
  const u32 kWorkers = 4;
  const u64 kInterArrival = 1'500;  // offered load ~133k pps at 200 MHz

  std::printf("filter: %s\n", kFilterText);
  std::printf("baseline (run-to-completion, no interrupts): measuring...\n");
  const double base_cpp = BaselineCyclesPerPacket(std::min(packets, 2'000u));
  const double base_pps = kCpuMhz * 1e6 / base_cpp;

  std::printf("dataplane (IRQ-driven, %u workers, %u packets): running...\n\n", kWorkers,
              packets);
  DataplaneRun run = RunInterruptDriven(packets, kWorkers, kInterArrival);
  // Throughput over the busy period only (idle fast-forward cycles are the
  // harness waiting for the wire, not work).
  const u64 busy_cycles = run.cycles - run.idle_cycles;
  const double dp_cpp = run.served > 0 ? static_cast<double>(busy_cycles) / run.served : 0;
  const double dp_pps = dp_cpp > 0 ? kCpuMhz * 1e6 / dp_cpp : 0;

  std::printf("%-44s %14s\n", "metric", "value");
  std::printf("%-44s %14.1f\n", "baseline filter cycles/packet", base_cpp);
  std::printf("%-44s %14.0f\n", "baseline packets/sec (200 MHz)", base_pps);
  std::printf("%-44s %14llu\n", "dataplane packets served",
              static_cast<unsigned long long>(run.served));
  std::printf("%-44s %14.1f\n", "dataplane cycles/packet (busy)", dp_cpp);
  std::printf("%-44s %14.0f\n", "dataplane packets/sec (200 MHz)", dp_pps);
  std::printf("%-44s %14.1f\n", "async overhead cycles/packet", dp_cpp - base_cpp);
  std::printf("%-44s %14llu\n", "NIC IRQs", static_cast<unsigned long long>(run.nic_irqs));
  std::printf("%-44s %14llu\n", "timer IRQs", static_cast<unsigned long long>(run.timer_irqs));
  std::printf("%-44s %14llu\n", "context switches",
              static_cast<unsigned long long>(run.context_switches));
  std::printf("%-44s %14llu\n", "preemptions",
              static_cast<unsigned long long>(run.preemptions));
  std::printf("%-44s %14llu\n", "RX ring drops",
              static_cast<unsigned long long>(run.rx_dropped));
  std::printf("%-44s %14llu\n", "queue-full drops",
              static_cast<unsigned long long>(run.queue_dropped));

  BenchJson json("dataplane");
  json.Set("packets_offered", static_cast<u64>(packets));
  json.Set("packets_served", run.served);
  json.Set("baseline_cycles_per_packet", base_cpp);
  json.Set("baseline_packets_per_sec", base_pps);
  json.Set("dataplane_cycles_per_packet", dp_cpp);
  json.Set("dataplane_packets_per_sec", dp_pps);
  json.Set("async_overhead_cycles_per_packet", dp_cpp - base_cpp);
  json.Set("nic_irqs", run.nic_irqs);
  json.Set("timer_irqs", run.timer_irqs);
  json.Set("context_switches", run.context_switches);
  json.Set("preemptions", run.preemptions);
  json.Set("rx_ring_drops", run.rx_dropped);
  json.Set("queue_full_drops", run.queue_dropped);
  json.Set("filter_invocations", run.filter_invocations);
  json.Set("workers", kWorkers);
  json.Set("workers_exited", static_cast<u64>(run.workers_exited));
  json.Set("total_cycles", run.cycles);
  json.Set("idle_cycles", run.idle_cycles);
  const std::string path = json.Write();
  std::printf("\nwrote %s\n", path.c_str());

  const bool meaningful = packets >= 1'000;
  if (meaningful && dp_pps < 10'000.0) {
    std::fprintf(stderr, "FAIL: %0.f pps through the protected path (< 10k)\n", dp_pps);
    return 1;
  }
  if (run.workers_exited != kWorkers) {
    std::fprintf(stderr, "FAIL: only %u/%u workers exited\n", run.workers_exited, kWorkers);
    return 1;
  }
  std::printf("protected-path throughput >= 10k packets/sec: %s\n",
              dp_pps >= 10'000.0 ? "yes" : "(run too small to judge)");
  return 0;
}
