// Dataplane throughput: packets/sec through the protected-extension filter
// path, interrupt-driven end to end (NIC RX IRQ -> SPL 1 compiled filter ->
// per-process queue -> worker pkt_recv/pkt_send -> TX ring), versus the
// run-to-completion baseline (the kernel invoking the same protected filter
// in a tight loop with no devices, no scheduler, no context switches).
// The difference is the asynchronous machinery's overhead; the absolute
// number is the paper-machine (200 MHz) packet rate. Writes
// BENCH_dataplane.json.
//
// `--smp N` runs the same pipeline on an N-vCPU machine (NIC + filter
// classification on vCPU 0, workers spread across cores by the SMP
// scheduler) against a saturating arrival rate, compares it with the
// identical-load 1-vCPU run, and enforces the scaling acceptance gate
// (>= 1.6x filtered pps at N=4; PALLADIUM_BENCH_MIN_SMP_SCALE overrides).
// The absolute-pps gate reads PALLADIUM_BENCH_MIN_PPS (default 10000)
// so loaded CI runners can relax it without patching the binary; the JSON
// carries the threshold and the margin either way.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/filter/filter.h"
#include "src/hw/nic.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"

using namespace palladium;

namespace {

constexpr char kFilterText[] = "ip.proto == 6 && ip.src == 10.20.30.40 && tcp.dport == 8080";

std::vector<u8> MatchingFrame() {
  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.src_ip = 0x0A141E28;  // 10.20.30.40
  spec.dst_port = 8080;
  spec.payload_len = 64;
  return BuildPacket(spec);
}

// Run-to-completion baseline: same protected filter, no interrupts.
double BaselineCyclesPerPacket(u32 packets) {
  MachineConfig mcfg;
  mcfg.num_cpus = 1;
  Machine machine(mcfg);
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);
  std::string err;
  auto expr = ParseFilter(kFilterText, &err);
  if (!expr) {
    std::fprintf(stderr, "parse filter: %s\n", err.c_str());
    std::exit(1);
  }
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(*expr), &aerr);
  if (!obj) {
    std::fprintf(stderr, "assemble filter: %s\n", aerr.ToString().c_str());
    std::exit(1);
  }
  std::string diag;
  auto ext = kext.LoadExtension("filter", *obj, &diag);
  auto fid = ext ? kext.FindFunction("filter:filter_run") : std::nullopt;
  if (!ext || !fid) {
    std::fprintf(stderr, "baseline setup failed: %s\n", diag.c_str());
    std::exit(1);
  }
  auto frame = MatchingFrame();
  const u32 len = static_cast<u32>(frame.size());
  u64 cycles = 0;
  for (u32 i = 0; i < packets; ++i) {
    kext.WriteShared(*ext, 0, &len, 4);
    kext.WriteShared(*ext, 4, frame.data(), len);
    auto r = kext.Invoke(*fid, len);
    if (!r.ok || r.value != 1) {
      std::fprintf(stderr, "baseline invoke failed\n");
      std::exit(1);
    }
    cycles += r.cycles;
  }
  return static_cast<double>(cycles) / packets;
}

struct DataplaneRun {
  u64 served = 0;
  u64 cycles = 0;
  u64 busy_cycles = 0;
  double pps = 0;
  u64 nic_irqs = 0;
  u64 timer_irqs = 0;
  u64 preemptions = 0;
  u64 context_switches = 0;
  u64 rx_dropped = 0;
  u64 queue_dropped = 0;
  u64 filter_invocations = 0;
  u64 idle_cycles = 0;
  u64 steals = 0;
  u64 shootdown_ipis = 0;
  u64 backlog_dropped = 0;
  u32 workers_exited = 0;
};

DataplaneRun RunInterruptDriven(u32 packets, u32 workers, u64 inter_arrival, u32 num_cpus,
                                bool rps) {
  MachineConfig mcfg;
  mcfg.num_cpus = num_cpus;  // explicit, so the comparison ignores PALLADIUM_SMP
  Machine machine(mcfg);
  Kernel::Config kcfg;
  kcfg.timer_period_cycles = 25'000;
  Kernel kernel(machine, kcfg);
  KernelExtensionManager kext(kernel);
  Scheduler::Config scfg;
  scfg.slice_cycles = 80'000;
  Scheduler sched(kernel, scfg);

  std::string diag;
  auto img = AssembleAndLink(kPktEchoWorkerSource, kUserTextBase, {}, &diag);
  if (!img) {
    std::fprintf(stderr, "assemble worker: %s\n", diag.c_str());
    std::exit(1);
  }
  std::vector<Pid> pids;
  for (u32 w = 0; w < workers; ++w) {
    Pid pid = kernel.CreateProcess();
    if (pid == 0 || !kernel.LoadUserImage(pid, *img, "main", &diag)) {
      std::fprintf(stderr, "load worker: %s\n", diag.c_str());
      std::exit(1);
    }
    pids.push_back(pid);
    sched.AddProcess(pid);
  }

  Nic nic(machine.pm(), kernel.pic(), kIrqNic);
  PacketDataplane::Config dcfg;
  dcfg.rps = rps;
  PacketDataplane dataplane(kernel, kext, nic, dcfg);
  if (!dataplane.AddFlow("filter", kFilterText, pids, &diag)) {
    std::fprintf(stderr, "flow: %s\n", diag.c_str());
    std::exit(1);
  }

  auto frame = MatchingFrame();
  u64 at = 5'000;
  for (u32 i = 0; i < packets; ++i) {
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += inter_arrival;
  }
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dataplane.Shutdown();
    return true;
  });

  auto result = sched.RunAll(20'000'000'000ull);

  DataplaneRun out;
  out.served = dataplane.stats().tx_frames;
  out.cycles = result.cycles;
  out.idle_cycles = sched.stats().idle_cycles;
  // Throughput over the busy period only (machine-idle fast-forward cycles
  // are the harness waiting for the wire, not work).
  out.busy_cycles = result.cycles - sched.stats().idle_cycles;
  const double cpp =
      out.served > 0 ? static_cast<double>(out.busy_cycles) / out.served : 0;
  out.pps = cpp > 0 ? kCpuMhz * 1e6 / cpp : 0;
  out.nic_irqs = kernel.pic().delivered(kIrqNic);
  for (u32 c = 0; c < machine.num_cpus(); ++c) {
    out.timer_irqs += kernel.pic(c).delivered(kIrqTimer);
  }
  out.preemptions = sched.stats().preemptions;
  out.context_switches = sched.stats().context_switches;
  out.rx_dropped = nic.stats().rx_dropped;
  out.queue_dropped = dataplane.stats().dropped_queue_full;
  out.filter_invocations = dataplane.stats().filter_invocations;
  out.steals = sched.stats().steals;
  out.shootdown_ipis = kernel.smp_stats().shootdown_ipis;
  out.backlog_dropped = dataplane.stats().dropped_backlog_full;
  out.workers_exited = result.exited;
  return out;
}

double EnvDouble(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  u32 packets = 20'000;
  u32 smp = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smp") == 0) {
      if (i + 1 >= argc || std::atoi(argv[i + 1]) <= 0) {
        std::fprintf(stderr, "usage: %s [packets] [--smp N]\n", argv[0]);
        return 2;
      }
      smp = static_cast<u32>(std::atoi(argv[++i]));
      if (smp > kMaxCpus) {
        // The Machine clamps to kMaxCpus; refusing here keeps the printed
        // configuration and the JSON honest about what actually ran.
        std::fprintf(stderr, "--smp %u exceeds the machine maximum of %u vCPUs\n", smp,
                     kMaxCpus);
        return 2;
      }
    } else if (std::atoi(argv[i]) > 0) {
      packets = static_cast<u32>(std::atoi(argv[i]));
    } else {
      // A typo must not silently become packets=0 and disarm both gates.
      std::fprintf(stderr, "unrecognized argument '%s'; usage: %s [packets] [--smp N]\n",
                   argv[i], argv[0]);
      return 2;
    }
  }
  const u32 kWorkers = smp > 1 ? 2 * smp : 4;
  // Default mode offers ~133k pps at 200 MHz. SMP mode offers ~200k pps:
  // comfortably above one core's sustainable rate (so the 1-vCPU reference
  // is saturated and measures its capacity) yet inside the 4-core capacity
  // (so the SMP run is not throttled into receive livelock on vCPU 0).
  const u64 inter_arrival = smp > 1 ? 1'000 : 1'500;
  const double min_pps = EnvDouble("PALLADIUM_BENCH_MIN_PPS", 10'000.0);

  std::printf("filter: %s\n", kFilterText);
  std::printf("baseline (run-to-completion, no interrupts): measuring...\n");
  const double base_cpp = BaselineCyclesPerPacket(std::min(packets, 2'000u));
  const double base_pps = kCpuMhz * 1e6 / base_cpp;

  std::printf("dataplane (IRQ-driven, %u vCPU(s), %u workers, %u packets): running...\n\n",
              smp, kWorkers, packets);
  // SMP mode turns on RPS (classification on the consuming worker's vCPU) in
  // BOTH runs, so the scaling ratio isolates the core count.
  DataplaneRun run = RunInterruptDriven(packets, kWorkers, inter_arrival, smp, smp > 1);
  DataplaneRun uni;  // same offered load on one vCPU (the scaling denominator)
  double scaling = 1.0;
  if (smp > 1) {
    std::printf("reference run (same load, 1 vCPU): running...\n");
    uni = RunInterruptDriven(packets, kWorkers, inter_arrival, 1, /*rps=*/true);
    scaling = uni.pps > 0 ? run.pps / uni.pps : 0;
  }
  const double dp_cpp = run.served > 0
                            ? static_cast<double>(run.busy_cycles) / run.served
                            : 0;

  std::printf("%-44s %14s\n", "metric", "value");
  std::printf("%-44s %14.1f\n", "baseline filter cycles/packet", base_cpp);
  std::printf("%-44s %14.0f\n", "baseline packets/sec (200 MHz)", base_pps);
  std::printf("%-44s %14llu\n", "dataplane packets served",
              static_cast<unsigned long long>(run.served));
  std::printf("%-44s %14.1f\n", "dataplane cycles/packet (busy)", dp_cpp);
  std::printf("%-44s %14.0f\n", "dataplane packets/sec (200 MHz)", run.pps);
  std::printf("%-44s %14.1f\n", "async overhead cycles/packet", dp_cpp - base_cpp);
  std::printf("%-44s %14llu\n", "NIC IRQs", static_cast<unsigned long long>(run.nic_irqs));
  std::printf("%-44s %14llu\n", "timer IRQs", static_cast<unsigned long long>(run.timer_irqs));
  std::printf("%-44s %14llu\n", "context switches",
              static_cast<unsigned long long>(run.context_switches));
  std::printf("%-44s %14llu\n", "preemptions",
              static_cast<unsigned long long>(run.preemptions));
  std::printf("%-44s %14llu\n", "RX ring drops",
              static_cast<unsigned long long>(run.rx_dropped));
  std::printf("%-44s %14llu\n", "queue-full drops",
              static_cast<unsigned long long>(run.queue_dropped));
  if (smp > 1) {
    std::printf("%-44s %14llu\n", "work steals", static_cast<unsigned long long>(run.steals));
    std::printf("%-44s %14llu\n", "shootdown IPIs",
                static_cast<unsigned long long>(run.shootdown_ipis));
    std::printf("%-44s %14llu\n", "backlog drops (cheap, pre-filter)",
                static_cast<unsigned long long>(run.backlog_dropped));
    std::printf("%-44s %14.0f\n", "1-vCPU packets/sec (same load)", uni.pps);
    std::printf("%-44s %14llu\n", "1-vCPU packets served",
                static_cast<unsigned long long>(uni.served));
    std::printf("%-44s %14llu\n", "1-vCPU total cycles",
                static_cast<unsigned long long>(uni.cycles));
    std::printf("%-44s %14llu\n", "1-vCPU idle cycles",
                static_cast<unsigned long long>(uni.idle_cycles));
    std::printf("%-44s %14llu\n", "1-vCPU backlog drops",
                static_cast<unsigned long long>(uni.backlog_dropped));
    std::printf("%-44s %14llu\n", "1-vCPU queue drops",
                static_cast<unsigned long long>(uni.queue_dropped));
    std::printf("%-44s %14llu\n", "1-vCPU context switches",
                static_cast<unsigned long long>(uni.context_switches));
    std::printf("%-44s %14.2f\n", "SMP scaling (pps vs 1 vCPU)", scaling);
  }

  BenchJson json(smp > 1 ? "dataplane_smp" + std::to_string(smp) : "dataplane");
  json.Set("packets_offered", static_cast<u64>(packets));
  json.Set("packets_served", run.served);
  json.Set("baseline_cycles_per_packet", base_cpp);
  json.Set("baseline_packets_per_sec", base_pps);
  json.Set("dataplane_cycles_per_packet", dp_cpp);
  json.Set("dataplane_packets_per_sec", run.pps);
  json.Set("async_overhead_cycles_per_packet", dp_cpp - base_cpp);
  json.Set("nic_irqs", run.nic_irqs);
  json.Set("timer_irqs", run.timer_irqs);
  json.Set("context_switches", run.context_switches);
  json.Set("preemptions", run.preemptions);
  json.Set("rx_ring_drops", run.rx_dropped);
  json.Set("queue_full_drops", run.queue_dropped);
  json.Set("filter_invocations", run.filter_invocations);
  json.Set("workers", kWorkers);
  json.Set("workers_exited", static_cast<u64>(run.workers_exited));
  json.Set("total_cycles", run.cycles);
  json.Set("idle_cycles", run.idle_cycles);
  json.Set("min_pps", min_pps);
  json.Set("pps_margin", run.pps - min_pps);
  json.Set("smp_cpus", smp);
  if (smp > 1) {
    json.Set("uni_packets_per_sec", uni.pps);
    json.Set("smp_scaling", scaling);
    json.Set("work_steals", run.steals);
    json.Set("shootdown_ipis", run.shootdown_ipis);
  }
  const std::string path = json.Write();
  std::printf("\nwrote %s\n", path.c_str());

  const bool meaningful = packets >= 1'000;
  if (meaningful && run.pps < min_pps) {
    std::fprintf(stderr, "FAIL: %.0f pps through the protected path (< %.0f)\n", run.pps,
                 min_pps);
    return 1;
  }
  if (run.workers_exited != kWorkers) {
    std::fprintf(stderr, "FAIL: only %u/%u workers exited\n", run.workers_exited, kWorkers);
    return 1;
  }
  if (smp > 1 && meaningful) {
    // The SMP acceptance gate: N=4 must sustain >= 1.6x the 1-vCPU filtered
    // rate under identical offered load (smaller N prorates the bar).
    const double min_scale =
        EnvDouble("PALLADIUM_BENCH_MIN_SMP_SCALE", smp >= 4 ? 1.6 : 1.2);
    if (scaling < min_scale) {
      std::fprintf(stderr, "FAIL: SMP scaling %.2fx at %u vCPUs (< %.2fx)\n", scaling, smp,
                   min_scale);
      return 1;
    }
    std::printf("SMP scaling gate (>= %.2fx at %u vCPUs): %.2fx ok\n", min_scale, smp,
                scaling);
  }
  std::printf("protected-path throughput >= %.0f packets/sec: %s\n", min_pps,
              meaningful && run.pps >= min_pps ? "yes" : "(run too small to judge)");
  return 0;
}
