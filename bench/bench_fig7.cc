// Figure 7: packet-filter cost (cycles) vs number of conjunctive terms, all
// terms true — compiled filter running as a Palladium kernel extension vs
// the interpreted BPF filter. Both run on the same simulated CPU; the BPF
// interpreter itself is simulated machine code at SPL 0.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/bpf/bpf.h"
#include "src/filter/filter.h"
#include "src/hw/bare_machine.h"
#include "src/net/packet.h"

namespace palladium {
namespace {

const char* kFilterSources[] = {
    "",
    "ip.proto == 6",
    "ip.proto == 6 && ip.src == 10.20.30.40",
    "ip.proto == 6 && ip.src == 10.20.30.40 && ip.dst == 10.20.30.41",
    "ip.proto == 6 && ip.src == 10.20.30.40 && ip.dst == 10.20.30.41 && tcp.dport == 8080",
};

PacketSpec MatchingPacket() {
  PacketSpec spec;
  spec.proto = kIpProtoTcp;
  spec.src_ip = 0x0A141E28;   // 10.20.30.40
  spec.dst_ip = 0x0A141E29;   // 10.20.30.41
  spec.dst_port = 8080;
  return spec;
}

// Compiled filter as a kernel extension: returns invocation cycles.
u64 MeasurePalladium(const FilterExpr& expr, const std::vector<u8>& pkt, bool* match) {
  Machine machine;
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(expr), &aerr);
  if (!obj) {
    std::fprintf(stderr, "compile: %s\n", aerr.ToString().c_str());
    std::exit(1);
  }
  std::string diag;
  auto ext = kext.LoadExtension("filter", *obj, &diag);
  if (!ext) {
    std::fprintf(stderr, "load: %s\n", diag.c_str());
    std::exit(1);
  }
  auto fid = kext.FindFunction("filter:filter_run");
  u32 len = static_cast<u32>(pkt.size());
  kext.WriteShared(*ext, 0, &len, 4);
  kext.WriteShared(*ext, 4, pkt.data(), len);
  // Warm-up, then measured run.
  kext.Invoke(*fid, len);
  auto r = kext.Invoke(*fid, len);
  if (!r.ok) {
    std::fprintf(stderr, "invoke: %s\n", r.error.c_str());
    std::exit(1);
  }
  *match = r.value == 1;
  return r.cycles;
}

// Interpreted BPF at SPL 0 on the bare machine: returns call cycles.
u64 MeasureBpf(const FilterExpr& expr, const std::vector<u8>& pkt, bool* match) {
  constexpr u32 kProgAddr = 0x40000;
  constexpr u32 kPktAddr = 0x48000;
  constexpr u32 kCodeBase = 0x10000;
  BpfProgram prog = CompileFilterToBpf(expr);
  BareMachine bm;
  std::string diag;
  std::string src = BpfInterpreterAsmSource(kProgAddr, kPktAddr) + R"(
  .global main
main:
  push $)" + std::to_string(pkt.size()) +
                    R"(
  call bpf_run
  pop %ecx
  push $)" + std::to_string(pkt.size()) +
                    R"(
  call bpf_run          ; warmed, measured via cycle delta below
  hlt
)";
  auto img = bm.LoadProgram(src, kCodeBase, &diag);
  if (!img) {
    std::fprintf(stderr, "bpf asm: %s\n", diag.c_str());
    std::exit(1);
  }
  auto ser = prog.Serialize();
  bm.pm().WriteBlock(kProgAddr, ser.data(), static_cast<u32>(ser.size()));
  bm.pm().WriteBlock(kPktAddr, pkt.data(), static_cast<u32>(pkt.size()));
  bm.Start(*img->Lookup("main"), 0, 0x80000);

  // Run the warm-up call, snapshot, run the measured call.
  // We detect the boundary by running to completion twice: first measure the
  // total, then the total of a single-call variant, and subtract.
  StopInfo stop = bm.Run(10'000'000);
  if (stop.reason != StopReason::kHalted) {
    std::fprintf(stderr, "bpf run did not halt\n");
    std::exit(1);
  }
  u64 two_calls = bm.cpu().cycles();
  *match = bm.cpu().reg(Reg::kEax) == 1;

  // Single-call variant for the subtraction.
  BareMachine bm1;
  std::string src1 = BpfInterpreterAsmSource(kProgAddr, kPktAddr) + R"(
  .global main
main:
  push $)" + std::to_string(pkt.size()) +
                     R"(
  call bpf_run
  pop %ecx
  hlt
)";
  auto img1 = bm1.LoadProgram(src1, kCodeBase, &diag);
  bm1.pm().WriteBlock(kProgAddr, ser.data(), static_cast<u32>(ser.size()));
  bm1.pm().WriteBlock(kPktAddr, pkt.data(), static_cast<u32>(pkt.size()));
  bm1.Start(*img1->Lookup("main"), 0, 0x80000);
  bm1.Run(10'000'000);
  u64 one_call = bm1.cpu().cycles();
  return two_calls > one_call ? two_calls - one_call : one_call;
}

}  // namespace
}  // namespace palladium

int main() {
  using namespace palladium;

  std::printf("Figure 7: packet filter cost vs number of terms (all terms true)\n");
  std::printf("%-8s %18s %14s %8s\n", "Terms", "Palladium (cyc)", "BPF (cyc)", "BPF/Pd");

  auto pkt = BuildPacket(MatchingPacket());
  BenchJson json("fig7");
  for (int terms = 0; terms <= 4; ++terms) {
    std::string err;
    auto expr = ParseFilter(kFilterSources[terms], &err);
    if (!expr) {
      std::fprintf(stderr, "parse: %s\n", err.c_str());
      return 1;
    }
    bool pd_match = false, bpf_match = false;
    u64 pd = MeasurePalladium(*expr, pkt, &pd_match);
    u64 bpf = MeasureBpf(*expr, pkt, &bpf_match);
    if (!pd_match || !bpf_match) {
      std::fprintf(stderr, "filter disagreement at %d terms (pd=%d bpf=%d)\n", terms,
                   pd_match, bpf_match);
      return 1;
    }
    std::printf("%-8d %18llu %14llu %8.2f\n", terms, static_cast<unsigned long long>(pd),
                static_cast<unsigned long long>(bpf), static_cast<double>(bpf) / pd);
    json.Set("terms_" + std::to_string(terms) + "_palladium_cycles", pd);
    json.Set("terms_" + std::to_string(terms) + "_bpf_cycles", bpf);
  }
  std::printf("\nPaper reference: BPF grows steeply with terms while the compiled\n");
  std::printf("Palladium filter is nearly flat; at 4 terms the extension-based filter\n");
  std::printf("is more than twice as fast as the interpreted one.\n");
  std::printf("wrote %s\n", json.Write().c_str());
  return 0;
}
