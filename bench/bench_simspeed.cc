// Host-side performance of the reproduction infrastructure itself, using
// google-benchmark: simulator instruction throughput, assembler speed, and
// the host BPF reference interpreter. These are engineering metrics for the
// repository (how fast experiments run), not paper results.
//
// The simulator throughput benches run the same workload under each
// execution engine so speedups are measured in-binary, paired, on the same
// machine:
//   trace   hot-trace tier (micro-op IR with lazy flags, pinned
//           translations, constant folding) on top of the superblock
//           engine — the default configuration
//   block   superblock engine (decoded basic-block runs, threaded dispatch,
//           block chaining) + D-TLB, trace tier off (PALLADIUM_NO_TRACE=1)
//   insn    PR 2 per-instruction fast path (decode cache + D-TLB,
//           dispatched one instruction at a time; PALLADIUM_NO_BLOCKS=1)
//   oracle  everything off: per-byte fetch + per-byte data path
// All four appear in one BENCH_simspeed.json; `--engine
// {trace,block,insn,oracle}` restricts the run to a single engine.
// Architectural results are identical across engines — only the wall-clock
// rate moves.
// The SMP rows (`BM_Smp{Alu,Mem}_nN_{interleaved,threaded}`) measure the
// same per-vCPU workloads on an N-vCPU machine under the deterministic
// min-cycle interleaver vs the host-parallel threaded mode (one host thread
// per vCPU, epoch barriers — src/hw/smp.h), as paired in-binary rows:
// `sim_mips` is the *aggregate* simulated instruction rate over all vCPUs,
// so threaded/interleaved on the same JSON is the host-parallel speedup.
// `host_cpus` records how many host cores the runner had (the threaded rows
// are meaningless to compare across machines without it).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/asm/assembler.h"
#include "src/bpf/bpf.h"
#include "src/filter/filter.h"
#include "src/hw/bare_machine.h"
#include "src/hw/smp.h"
#include "src/net/packet.h"

namespace palladium {
namespace {

enum class Engine { kTrace, kBlock, kInsn, kOracle };

void ConfigureEngine(Cpu& cpu, Engine engine) {
  switch (engine) {
    case Engine::kTrace:
      cpu.set_block_engine_enabled(true);
      cpu.set_decode_cache_enabled(true);
      cpu.set_dtlb_enabled(true);
      cpu.set_trace_engine_enabled(true);
      break;
    case Engine::kBlock:
      cpu.set_block_engine_enabled(true);
      cpu.set_decode_cache_enabled(true);
      cpu.set_dtlb_enabled(true);
      cpu.set_trace_engine_enabled(false);
      break;
    case Engine::kInsn:
      cpu.set_block_engine_enabled(false);
      cpu.set_decode_cache_enabled(true);
      cpu.set_dtlb_enabled(true);
      cpu.set_trace_engine_enabled(false);
      break;
    case Engine::kOracle:
      cpu.set_block_engine_enabled(false);
      cpu.set_decode_cache_enabled(false);
      cpu.set_dtlb_enabled(false);
      cpu.set_trace_engine_enabled(false);
      break;
  }
}

// ALU-heavy steady state: register ops plus one load, a tight loop.
constexpr const char* kAluWorkload = R"(
  .global main
main:
  mov $1000, %ecx
loop:
  add $3, %eax
  xor $5, %eax
  ld 0x20000, %ebx
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)";

// Memory-heavy steady state: nearly every instruction is a load, store,
// push or pop.
constexpr const char* kMemWorkload = R"(
  .global main
main:
  mov $1000, %ecx
  mov $0x20000, %ebx
  mov $0x21000, %esi
loop:
  st %eax, 0(%ebx)
  ld 0(%ebx), %eax
  st %eax, 8(%esi)
  ld 8(%esi), %edx
  push %eax
  push %edx
  st16 %edx, 16(%ebx)
  ld16 16(%ebx), %eax
  st8 %eax, 24(%esi)
  ld8 24(%esi), %edx
  pop %edx
  pop %eax
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)";

void RunThroughput(benchmark::State& state, const char* workload, Engine engine) {
  BareMachine bm;
  ConfigureEngine(bm.cpu(), engine);
  std::string diag;
  auto img = bm.LoadProgram(workload, 0x10000, &diag);
  if (!img) {
    state.SkipWithError(diag.c_str());
    return;
  }
  u64 insns = 0;
  for (auto _ : state) {
    bm.Start(*img->Lookup("main"), 0, 0x80000);
    bm.cpu().set_cycles(0);  // Run()'s limit is on *cumulative* cycles
    u64 before = bm.cpu().instructions_retired();
    benchmark::DoNotOptimize(bm.Run(10'000'000));
    insns += bm.cpu().instructions_retired() - before;
  }
  state.counters["sim_insns_per_sec"] =
      benchmark::Counter(static_cast<double>(insns), benchmark::Counter::kIsRate);
  state.counters["sim_mips"] = benchmark::Counter(
      static_cast<double>(insns) / 1e6, benchmark::Counter::kIsRate);
  if (engine == Engine::kBlock || engine == Engine::kTrace) {
    const auto& bs = bm.cpu().block_stats();
    state.counters["block_chains"] = benchmark::Counter(static_cast<double>(bs.chains));
    state.counters["block_entries"] = benchmark::Counter(static_cast<double>(bs.entries));
  }
  if (engine == Engine::kTrace) {
    const auto& ts = bm.cpu().trace_stats();
    state.counters["trace_promotions"] = benchmark::Counter(static_cast<double>(ts.promotions));
    state.counters["trace_entries"] = benchmark::Counter(static_cast<double>(ts.entries));
    state.counters["trace_uop_insns"] = benchmark::Counter(static_cast<double>(ts.uop_insns));
    state.counters["trace_flag_materializations"] =
        benchmark::Counter(static_cast<double>(ts.flag_materializations));
    state.counters["trace_probes_elided"] =
        benchmark::Counter(static_cast<double>(ts.probes_elided));
  }
}

// Per-vCPU variants of the workloads above: identical instruction mix, but
// every vCPU gets a private data window (so the workload is data-race-free,
// the regime threaded mode guarantees equivalence for) and its own code and
// stack placement.
std::string SmpAluWorkload(u32 c, u32 iterations) {
  char buf[512];
  std::snprintf(buf, sizeof buf, R"(
  .global main
main:
  mov $%u, %%ecx
loop:
  add $3, %%eax
  xor $5, %%eax
  ld 0x%x, %%ebx
  dec %%ecx
  cmp $0, %%ecx
  jne loop
  hlt
)",
                iterations, 0x200000 + c * 0x2000);
  return buf;
}

std::string SmpMemWorkload(u32 c, u32 iterations) {
  // Private per-vCPU window well above the code images (which sit at
  // 0x10000 + c * 0x8000, i.e. up to 0x28000+): a window below 0x28000
  // would let CPU 0's stores clobber CPU 2's instruction bytes, making the
  // workload racy instead of DRF. Vpns 512+ also map to TLB sets 0..7,
  // clear of the code pages' sets.
  const u32 base = 0x200000 + c * 0x2000;
  char buf[1024];
  std::snprintf(buf, sizeof buf, R"(
  .global main
main:
  mov $%u, %%ecx
  mov $0x%x, %%ebx
  mov $0x%x, %%esi
loop:
  st %%eax, 0(%%ebx)
  ld 0(%%ebx), %%eax
  st %%eax, 8(%%esi)
  ld 8(%%esi), %%edx
  push %%eax
  push %%edx
  st16 %%edx, 16(%%ebx)
  ld16 16(%%ebx), %%eax
  st8 %%eax, 24(%%esi)
  ld8 24(%%esi), %%edx
  pop %%edx
  pop %%eax
  dec %%ecx
  cmp $0, %%ecx
  jne loop
  hlt
)",
                iterations, base, base + 0x1000);
  return buf;
}

// Aggregate N-vCPU throughput under either SMP harness. Long loops amortize
// the per-iteration thread spawn/join of the threaded harness over a few
// hundred epochs of real execution.
void RunSmpThroughput(benchmark::State& state, bool mem_workload, u32 n, bool threaded) {
  constexpr u32 kIterations = 50'000;
  BareMachineConfig cfg;
  cfg.num_cpus = n;
  BareMachine bm(cfg);
  Machine& m = bm.machine();
  std::vector<u32> entries(n);
  for (u32 c = 0; c < n; ++c) {
    ConfigureEngine(m.cpu(c), Engine::kTrace);  // the default configuration
    const std::string src =
        mem_workload ? SmpMemWorkload(c, kIterations) : SmpAluWorkload(c, kIterations);
    std::string diag;
    auto img = bm.LoadProgram(src, 0x10000 + c * 0x8000, &diag);
    if (!img) {
      state.SkipWithError(diag.c_str());
      return;
    }
    entries[c] = *img->Lookup("main");
  }
  const auto park_on_stop = [](u32, const StopInfo&) { return false; };
  u64 insns = 0;
  for (auto _ : state) {
    u64 before = 0;
    for (u32 c = 0; c < n; ++c) {
      bm.StartCpu(c, entries[c], 0, 0x80000 - c * 0x4000);
      m.cpu(c).set_cycles(0);  // the harness limit is on cumulative cycles
      before += m.cpu(c).instructions_retired();
    }
    if (threaded) {
      ThreadedSmp ts(m);
      ts.Run(~0ull, park_on_stop);
    } else {
      SmpInterleaver il(m);
      il.Run(~0ull, park_on_stop);
    }
    u64 after = 0;
    for (u32 c = 0; c < n; ++c) after += m.cpu(c).instructions_retired();
    insns += after - before;
  }
  state.counters["sim_insns_per_sec"] =
      benchmark::Counter(static_cast<double>(insns), benchmark::Counter::kIsRate);
  state.counters["sim_mips"] = benchmark::Counter(
      static_cast<double>(insns) / 1e6, benchmark::Counter::kIsRate);
  state.counters["host_cpus"] =
      benchmark::Counter(static_cast<double>(std::thread::hardware_concurrency()));
}

void BM_AssembleFilter(benchmark::State& state) {
  std::string err;
  auto expr = ParseFilter(
      "ip.proto == 6 && ip.src == 10.20.30.40 && ip.dst == 10.20.30.41 && tcp.dport == 80",
      &err);
  std::string src = CompileFilterToAsm(*expr);
  for (auto _ : state) {
    AssembleError aerr;
    auto obj = Assemble(src, &aerr);
    benchmark::DoNotOptimize(obj);
  }
}
BENCHMARK(BM_AssembleFilter);

void BM_HostBpfInterpreter(benchmark::State& state) {
  std::string err;
  auto expr = ParseFilter("ip.proto == 6 && tcp.dport == 8080", &err);
  BpfProgram prog = CompileFilterToBpf(*expr);
  PacketSpec spec;
  spec.dst_port = 8080;
  auto pkt = BuildPacket(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BpfInterpretHost(prog, pkt.data(), static_cast<u32>(pkt.size())));
  }
}
BENCHMARK(BM_HostBpfInterpreter);

void BM_PacketBuild(benchmark::State& state) {
  PacketSpec spec;
  spec.payload_len = static_cast<u16>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPacket(spec));
  }
}
BENCHMARK(BM_PacketBuild)->Arg(64)->Arg(512);

struct EngineSpec {
  Engine engine;
  const char* name;
};
constexpr EngineSpec kEngines[] = {
    {Engine::kTrace, "trace"},
    {Engine::kBlock, "block"},
    {Engine::kInsn, "insn"},
    {Engine::kOracle, "oracle"},
};

void RegisterSimBenches(const std::string& engine_filter) {
  for (const EngineSpec& spec : kEngines) {
    if (!engine_filter.empty() && engine_filter != spec.name) continue;
    benchmark::RegisterBenchmark(
        (std::string("BM_SimAluThroughput_") + spec.name).c_str(),
        [engine = spec.engine](benchmark::State& st) {
          RunThroughput(st, kAluWorkload, engine);
        });
    benchmark::RegisterBenchmark(
        (std::string("BM_SimMemThroughput_") + spec.name).c_str(),
        [engine = spec.engine](benchmark::State& st) {
          RunThroughput(st, kMemWorkload, engine);
        });
  }
  // SMP rows only in unfiltered runs (the CI invocation), so every JSON that
  // carries a `_threaded` row also carries its `_interleaved` pair — the
  // regression gate normalizes with the in-binary ratio.
  if (!engine_filter.empty()) return;
  for (u32 n : {1u, 2u, 4u}) {
    for (bool threaded : {false, true}) {
      const std::string mode = threaded ? "threaded" : "interleaved";
      // UseRealTime: the default CPU-time clock only counts the main
      // thread, which would credit the threaded harness with work its
      // worker threads did. Wall time is the honest denominator for an
      // aggregate-throughput claim on both harnesses.
      benchmark::RegisterBenchmark(
          ("BM_SmpAlu_n" + std::to_string(n) + "_" + mode).c_str(),
          [n, threaded](benchmark::State& st) {
            RunSmpThroughput(st, /*mem_workload=*/false, n, threaded);
          })
          ->UseRealTime();
      benchmark::RegisterBenchmark(
          ("BM_SmpMem_n" + std::to_string(n) + "_" + mode).c_str(),
          [n, threaded](benchmark::State& st) {
            RunSmpThroughput(st, /*mem_workload=*/true, n, threaded);
          })
          ->UseRealTime();
    }
  }
}

}  // namespace
}  // namespace palladium

// Custom main: like BENCHMARK_MAIN(), but (a) strips the repo's own
// --engine {trace,block,insn,oracle} flag, which restricts the simulator
// throughput benches to one engine (default: all four, reported in one
// JSON), and (b) defaults --benchmark_out to BENCH_simspeed.json in JSON
// format (BENCH_JSON_DIR overrides the directory) so this binary emits
// machine-readable results like every other bench_*. An explicit
// --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string engine_filter;
  bool has_out = false;
  for (int i = 0; i < argc; ++i) {
    std::string arg(argv[i]);
    if (i > 0 && arg.rfind("--engine=", 0) == 0) {
      engine_filter = arg.substr(strlen("--engine="));
      continue;
    }
    if (i > 0 && arg == "--engine" && i + 1 < argc) {
      engine_filter = argv[++i];
      continue;
    }
    if (i > 0 && arg.rfind("--benchmark_out=", 0) == 0) has_out = true;
    args.push_back(argv[i]);
  }
  if (!engine_filter.empty() && engine_filter != "trace" && engine_filter != "block" &&
      engine_filter != "insn" && engine_filter != "oracle") {
    fprintf(stderr, "--engine must be one of trace, block, insn, oracle (got '%s')\n",
            engine_filter.c_str());
    return 1;
  }
  palladium::RegisterSimBenches(engine_filter);

  std::string out_flag = "--benchmark_out=" + palladium::BenchJsonPath("simspeed");
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
