// Host-side performance of the reproduction infrastructure itself, using
// google-benchmark: simulator instruction throughput, assembler speed, and
// the host BPF reference interpreter. These are engineering metrics for the
// repository (how fast experiments run), not paper results.
#include <benchmark/benchmark.h>

#include <fstream>

#include "bench/bench_util.h"
#include "src/asm/assembler.h"
#include "src/bpf/bpf.h"
#include "src/filter/filter.h"
#include "src/hw/bare_machine.h"
#include "src/net/packet.h"

namespace palladium {
namespace {

// Steady-state simulated-instruction throughput. Runs twice: with the
// decoded-page fetch fast path (the default) and with it disabled, which
// recreates the pre-cache fetch loop (16 page-table translations plus a
// fresh Insn::Decode per step). The ratio of the two sim_mips counters is
// the decode-cache speedup.
void RunThroughput(benchmark::State& state, bool decode_cache) {
  BareMachine bm;
  bm.cpu().set_decode_cache_enabled(decode_cache);
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $1000, %ecx
loop:
  add $3, %eax
  xor $5, %eax
  ld 0x20000, %ebx
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)",
                            0x10000, &diag);
  if (!img) {
    state.SkipWithError(diag.c_str());
    return;
  }
  u64 insns = 0;
  for (auto _ : state) {
    bm.Start(*img->Lookup("main"), 0, 0x80000);
    bm.cpu().set_cycles(0);  // Run()'s limit is on *cumulative* cycles
    u64 before = bm.cpu().instructions_retired();
    benchmark::DoNotOptimize(bm.Run(10'000'000));
    insns += bm.cpu().instructions_retired() - before;
  }
  state.counters["sim_insns_per_sec"] =
      benchmark::Counter(static_cast<double>(insns), benchmark::Counter::kIsRate);
  state.counters["sim_mips"] = benchmark::Counter(
      static_cast<double>(insns) / 1e6, benchmark::Counter::kIsRate);
}

void BM_SimulatorInstructionThroughput(benchmark::State& state) {
  RunThroughput(state, /*decode_cache=*/true);
}
BENCHMARK(BM_SimulatorInstructionThroughput);

void BM_SimulatorInstructionThroughputNoDecodeCache(benchmark::State& state) {
  RunThroughput(state, /*decode_cache=*/false);
}
BENCHMARK(BM_SimulatorInstructionThroughputNoDecodeCache);

// Memory-heavy steady state: nearly every instruction is a load, store, push
// or pop. Runs with the software D-TLB (the default) and with it disabled
// (the PR-1 per-byte translate loop); the sim_mips ratio is the D-TLB
// speedup on the data path. Results are identical either way — only the
// wall-clock rate moves.
void RunMemoryThroughput(benchmark::State& state, bool dtlb) {
  BareMachine bm;
  bm.cpu().set_dtlb_enabled(dtlb);
  std::string diag;
  auto img = bm.LoadProgram(R"(
  .global main
main:
  mov $1000, %ecx
  mov $0x20000, %ebx
  mov $0x21000, %esi
loop:
  st %eax, 0(%ebx)
  ld 0(%ebx), %eax
  st %eax, 8(%esi)
  ld 8(%esi), %edx
  push %eax
  push %edx
  st16 %edx, 16(%ebx)
  ld16 16(%ebx), %eax
  st8 %eax, 24(%esi)
  ld8 24(%esi), %edx
  pop %edx
  pop %eax
  dec %ecx
  cmp $0, %ecx
  jne loop
  hlt
)",
                            0x10000, &diag);
  if (!img) {
    state.SkipWithError(diag.c_str());
    return;
  }
  u64 insns = 0;
  for (auto _ : state) {
    bm.Start(*img->Lookup("main"), 0, 0x80000);
    bm.cpu().set_cycles(0);
    u64 before = bm.cpu().instructions_retired();
    benchmark::DoNotOptimize(bm.Run(10'000'000));
    insns += bm.cpu().instructions_retired() - before;
  }
  state.counters["sim_insns_per_sec"] =
      benchmark::Counter(static_cast<double>(insns), benchmark::Counter::kIsRate);
  state.counters["sim_mips"] = benchmark::Counter(
      static_cast<double>(insns) / 1e6, benchmark::Counter::kIsRate);
}

void BM_SimulatorMemoryThroughput(benchmark::State& state) {
  RunMemoryThroughput(state, /*dtlb=*/true);
}
BENCHMARK(BM_SimulatorMemoryThroughput);

void BM_SimulatorMemoryThroughputNoDtlb(benchmark::State& state) {
  RunMemoryThroughput(state, /*dtlb=*/false);
}
BENCHMARK(BM_SimulatorMemoryThroughputNoDtlb);

void BM_AssembleFilter(benchmark::State& state) {
  std::string err;
  auto expr = ParseFilter(
      "ip.proto == 6 && ip.src == 10.20.30.40 && ip.dst == 10.20.30.41 && tcp.dport == 80",
      &err);
  std::string src = CompileFilterToAsm(*expr);
  for (auto _ : state) {
    AssembleError aerr;
    auto obj = Assemble(src, &aerr);
    benchmark::DoNotOptimize(obj);
  }
}
BENCHMARK(BM_AssembleFilter);

void BM_HostBpfInterpreter(benchmark::State& state) {
  std::string err;
  auto expr = ParseFilter("ip.proto == 6 && tcp.dport == 8080", &err);
  BpfProgram prog = CompileFilterToBpf(*expr);
  PacketSpec spec;
  spec.dst_port = 8080;
  auto pkt = BuildPacket(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BpfInterpretHost(prog, pkt.data(), static_cast<u32>(pkt.size())));
  }
}
BENCHMARK(BM_HostBpfInterpreter);

void BM_PacketBuild(benchmark::State& state) {
  PacketSpec spec;
  spec.payload_len = static_cast<u16>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPacket(spec));
  }
}
BENCHMARK(BM_PacketBuild)->Arg(64)->Arg(512);

}  // namespace
}  // namespace palladium

// Custom main: like BENCHMARK_MAIN(), but defaults --benchmark_out to
// BENCH_simspeed.json in JSON format (BENCH_JSON_DIR overrides the
// directory) so this binary emits machine-readable results like every other
// bench_*. An explicit --benchmark_out on the command line wins.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=" + palladium::BenchJsonPath("simspeed");
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
