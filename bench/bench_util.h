// Shared benchmark plumbing: a Palladium system fixture (kernel + dynamic
// linker + user-extension runtime) plus a cycle-checkpoint syscall so that
// in-simulation code can bracket regions of interest with
//   int $0x80 (eax = 240)
// and the host collects the simulated-cycle timestamps. Deltas between
// checkpoint *pairs* cancel the checkpoint overhead itself.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/asm/assembler.h"
#include "src/core/kernel_ext.h"
#include "src/core/user_ext.h"
#include "src/dl/dynamic_linker.h"
#include "src/kernel/kernel.h"
#include "src/obs/metrics.h"

namespace palladium {

// --- Machine-readable results -------------------------------------------------
// Every bench binary writes BENCH_<name>.json (flat metrics object) next to
// its human-readable table, so CI and trend tooling can consume the numbers
// without scraping stdout. BENCH_JSON_DIR overrides the output directory
// (default: the current working directory).

inline std::string BenchJsonPath(const std::string& bench_name) {
  const char* dir = std::getenv("BENCH_JSON_DIR");
  return std::string(dir != nullptr ? dir : ".") + "/BENCH_" + bench_name + ".json";
}

class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  void Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    metrics_.emplace_back(key, buf);
  }
  void Set(const std::string& key, u64 value) {
    metrics_.emplace_back(key, std::to_string(value));
  }
  void Set(const std::string& key, u32 value) { Set(key, static_cast<u64>(value)); }
  void Set(const std::string& key, int value) {
    metrics_.emplace_back(key, std::to_string(value));
  }

  // Writes {"bench": <name>, "metrics": {...}}; returns the path.
  std::string Write() const {
    const std::string path = BenchJsonPath(name_);
    std::ofstream out(path);
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"metrics\": {\n";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out << "    \"" << metrics_[i].first << "\": " << metrics_[i].second
          << (i + 1 < metrics_.size() ? "," : "") << "\n";
    }
    out << "  }\n}\n";
    return path;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> metrics_;
};

// Federates a MetricsRegistry snapshot into a bench's JSON under the "obs."
// prefix, keeping the bench's own headline metrics separate from the
// registry's subsystem counters.
inline void EmitMetrics(const obs::MetricsRegistry& registry, BenchJson* json) {
  for (const auto& [name, v] : registry.values()) {
    if (v.integral) {
      json->Set("obs." + name, v.u);
    } else {
      json->Set("obs." + name, v.d);
    }
  }
}

inline constexpr u32 kSysBenchMark = 240;
inline constexpr double kCpuMhz = 200.0;  // the paper's Pentium 200

inline std::string BenchAsmPrelude() {
  return R"(
  .equ SYS_EXIT, 1
  .equ SYS_WRITE, 4
  .equ SYS_MMAP, 90
  .equ SYS_SIGACTION, 67
  .equ SYS_INIT_PL, 200
  .equ SYS_SET_RANGE, 201
  .equ SYS_SET_CALL_GATE, 202
  .equ SYS_SEG_DLOPEN, 212
  .equ SYS_SEG_DLSYM, 213
  .equ SYS_DLSYM, 214
  .equ SYS_SEG_DLCLOSE, 215
  .equ SYS_DLOPEN_UNPROT, 216
  .equ SYS_EXPOSE_SERVICE, 217
  .equ SYS_BENCH_MARK, 240
  .equ INT_SYSCALL, 0x80
)";
}

// A complete Palladium machine with cycle checkpoints.
class BenchSystem {
 public:
  BenchSystem() : kernel_(machine_), dl_(kernel_), uext_(kernel_, dl_), kext_(kernel_) {
    kernel_.RegisterSyscall(kSysBenchMark, [this](Kernel& k, u32, u32, u32) {
      marks_.push_back(k.cpu().cycles());
      k.ReturnFromGate(0);
    });
  }

  Machine& machine() { return machine_; }
  Kernel& kernel() { return kernel_; }
  DynamicLinker& dl() { return dl_; }
  UserExtensionRuntime& uext() { return uext_; }
  KernelExtensionManager& kext() { return kext_; }
  std::vector<u64>& marks() { return marks_; }

  void RegisterObject(const std::string& name, const std::string& source) {
    AssembleError aerr;
    auto obj = Assemble(BenchAsmPrelude() + source, &aerr);
    if (!obj) {
      std::fprintf(stderr, "assemble %s: %s\n", name.c_str(), aerr.ToString().c_str());
      std::exit(1);
    }
    dl_.RegisterObject(name, *obj);
  }

  // Loads and runs an app program to completion; dies loudly on failure.
  i32 RunApp(const std::string& source, u64 budget = 2'000'000'000ull) {
    std::string diag;
    auto img = AssembleAndLink(BenchAsmPrelude() + source, kUserTextBase, {}, &diag);
    if (!img) {
      std::fprintf(stderr, "assemble app: %s\n", diag.c_str());
      std::exit(1);
    }
    Pid pid = kernel_.CreateProcess();
    if (pid == 0 || !kernel_.LoadUserImage(pid, *img, "main", &diag)) {
      std::fprintf(stderr, "load app: %s\n", diag.c_str());
      std::exit(1);
    }
    RunResult r = kernel_.RunProcess(pid, budget);
    if (r.outcome != RunOutcome::kExited) {
      std::fprintf(stderr, "app did not exit cleanly: %s\n", r.kill_reason.c_str());
      std::exit(1);
    }
    last_pid_ = pid;
    return r.exit_code;
  }

  Pid last_pid() const { return last_pid_; }

  // Snapshots this system's subsystem counters (per-CPU TLB/decode/engine
  // stats, kernel SMP stats) into `json` under the "obs." prefix.
  void EmitSystemMetrics(BenchJson* json) const {
    obs::MetricsRegistry registry;
    registry.CollectMachine(kernel_, nullptr);
    EmitMetrics(registry, json);
  }

  // Interval between marks [2k] and [2k+1] minus the empty-pair baseline
  // (marks [0],[1]); callers lay out their checkpoints accordingly.
  u64 PairedDelta(size_t pair_index) const {
    const u64 baseline = marks_[1] - marks_[0];
    const u64 raw = marks_[2 * pair_index + 1] - marks_[2 * pair_index];
    return raw > baseline ? raw - baseline : 0;
  }

 private:
  Machine machine_;
  Kernel kernel_;
  DynamicLinker dl_;
  UserExtensionRuntime uext_;
  KernelExtensionManager kext_;
  std::vector<u64> marks_;
  Pid last_pid_ = 0;
};

inline double CyclesToUs(double cycles) { return cycles / kCpuMhz; }

}  // namespace palladium

#endif  // BENCH_BENCH_UTIL_H_
