// Ablations for the design decisions DESIGN.md calls out:
//   1. SFI baseline (Section 2.1): per-instruction sandboxing overhead on
//      memory-light vs memory-heavy kernels, write-only vs read-write.
//   2. The rejected TSS-update design for Prepare (Section 4.5.1): saving
//      the application stack pointer into the TSS would add a system call
//      to every protected invocation.
//   3. L4-style IPC (Section 2.2 / 5.1): four protection-domain crossings
//      per request-reply vs Palladium's two.
//   4. Call-gate parameter copying: the hardware word-copy cost Palladium
//      avoids by passing one register-sized argument + a shared area.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/hw/bare_machine.h"
#include "src/sfi/sfi.h"

namespace palladium {
namespace {

BenchJson& Json() {
  static BenchJson json("ablation");
  return json;
}

u64 RunBare(const ObjectFile& obj, u32 base, const char* entry, u32 arg) {
  BareMachine bm;
  LinkError lerr;
  auto img = LinkImage(obj, base, {}, &lerr);
  if (!img) {
    std::fprintf(stderr, "link: %s\n", lerr.message.c_str());
    std::exit(1);
  }
  bm.LoadImage(*img);
  // Driver: push arg; call entry; hlt.
  std::string driver = R"(
  .global main
main:
  push $)" + std::to_string(arg) +
                       R"(
  call )" + std::to_string(*img->Lookup(entry)) +
                       R"(
  pop %ecx
  hlt
)";
  std::string diag;
  auto dimg = bm.LoadProgram(driver, 0x8000, &diag);
  if (!dimg) {
    std::fprintf(stderr, "driver: %s\n", diag.c_str());
    std::exit(1);
  }
  bm.Start(*dimg->Lookup("main"), 0, 0x00480000);
  u64 before = bm.cpu().cycles();
  StopInfo stop = bm.Run(50'000'000);
  if (stop.reason != StopReason::kHalted) {
    std::fprintf(stderr, "kernel did not halt (%d)\n", static_cast<int>(stop.reason));
    std::exit(1);
  }
  return bm.cpu().cycles() - before;
}

void BenchSfi() {
  std::printf("1. SFI sandboxing overhead (vs unprotected, same simulated CPU)\n");
  std::printf("%-28s %12s %12s %12s\n", "kernel", "base (cyc)", "write-only", "read-write");

  struct Workload {
    const char* name;
    const char* source;
    u32 arg;
  };
  // compute-heavy: almost no memory traffic. copy/sum: memory-dominated.
  const Workload workloads[] = {
      {"compute (few mem ops)", R"(
  .global kernel_fn
kernel_fn:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ecx
  mov $1, %eax
k_loop:
  imul $3, %eax
  add $7, %eax
  xor $0x55, %eax
  dec %ecx
  cmp $0, %ecx
  jne k_loop
  pop %ebp
  ret
)",
       512},
      {"checksum (load-heavy)", R"(
  .global kernel_fn
kernel_fn:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ecx
  mov $buf, %ebx
  mov $0, %eax
c_loop:
  ld 0(%ebx), %esi
  add %esi, %eax
  add $4, %ebx
  dec %ecx
  cmp $0, %ecx
  jne c_loop
  pop %ebp
  ret
  .bss
buf:
  .space 4096
)",
       512},
      {"copy (store-heavy)", R"(
  .global kernel_fn
kernel_fn:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %ecx
  mov $src, %ebx
  mov $dst, %esi
m_loop:
  ld 0(%ebx), %eax
  st %eax, 0(%esi)
  add $4, %ebx
  add $4, %esi
  dec %ecx
  cmp $0, %ecx
  jne m_loop
  pop %ebp
  ret
  .bss
src:
  .space 2048
dst:
  .space 2048
)",
       512},
  };

  SfiOptions wo;
  wo.sandbox_base = 0x00400000;
  wo.sandbox_bits = 20;
  wo.protection = SfiProtection::kWriteOnly;
  wo.scratch = Reg::kEdi;
  SfiOptions rw = wo;
  rw.protection = SfiProtection::kReadWrite;
  // The copy kernel uses %esi; give it a different scratch.
  for (const Workload& w : workloads) {
    AssembleError aerr;
    auto obj = Assemble(w.source, &aerr);
    if (!obj) {
      std::fprintf(stderr, "%s: %s\n", w.name, aerr.ToString().c_str());
      std::exit(1);
    }
    SfiOptions wo_opt = wo, rw_opt = rw;
    if (std::string(w.name).rfind("copy", 0) == 0 ||
        std::string(w.name).rfind("checksum", 0) == 0) {
      wo_opt.scratch = Reg::kEdx;
      rw_opt.scratch = Reg::kEdx;
    }
    std::string diag;
    SfiStats s1, s2;
    auto obj_wo = SfiRewrite(*obj, wo_opt, &s1, &diag);
    auto obj_rw = SfiRewrite(*obj, rw_opt, &s2, &diag);
    if (!obj_wo || !obj_rw) {
      std::fprintf(stderr, "%s: %s\n", w.name, diag.c_str());
      std::exit(1);
    }
    u64 base = RunBare(*obj, 0x00400000, "kernel_fn", w.arg);
    u64 c_wo = RunBare(*obj_wo, 0x00400000, "kernel_fn", w.arg);
    u64 c_rw = RunBare(*obj_rw, 0x00400000, "kernel_fn", w.arg);
    std::printf("%-28s %12llu %11.1f%% %11.1f%%\n", w.name,
                static_cast<unsigned long long>(base),
                100.0 * (static_cast<double>(c_wo) - base) / base,
                100.0 * (static_cast<double>(c_rw) - base) / base);
    const std::string prefix = std::string("sfi_") + w.name + "_";
    Json().Set(prefix + "overhead_wo_pct", 100.0 * (static_cast<double>(c_wo) - base) / base);
    Json().Set(prefix + "overhead_rw_pct", 100.0 * (static_cast<double>(c_rw) - base) / base);
  }
  std::printf("  [paper, citing SFI literature: overheads range ~1%% to 220%%]\n\n");
}

void BenchTssVariant() {
  const CycleModel m = CycleModel::Measured();
  // Measured protected call from the live system:
  BenchSystem sys;
  sys.RegisterObject("nullext", ".global f\nf:\n  ret\n");
  sys.RunApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push $0
  call *%edi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "nullext"
fnname:
  .asciz "f"
)");
  u64 protected_call = sys.PairedDelta(1);
  // The rejected variant: Prepare would have to update TSS.esp2 through a
  // system call (the TSS is only writable at SPL 0).
  u64 tss_syscall = m.int_gate + m.iret_inter + sys.kernel().costs().syscall_dispatch;
  std::printf("2. Rejected design: saving ESP to the TSS on every call\n");
  std::printf("   Palladium protected call (measured):        %6llu cycles\n",
              static_cast<unsigned long long>(protected_call));
  std::printf("   + TSS-update system call (int+dispatch+iret): %4llu cycles\n",
              static_cast<unsigned long long>(tss_syscall));
  std::printf("   TSS variant total:                          %6llu cycles (%.1fx)\n\n",
              static_cast<unsigned long long>(protected_call + tss_syscall),
              static_cast<double>(protected_call + tss_syscall) / protected_call);
  Json().Set("protected_call_cycles", protected_call);
  Json().Set("tss_variant_cycles", protected_call + tss_syscall);
}

void BenchL4Comparison() {
  const CycleModel m = CycleModel::Measured();
  BenchSystem sys;
  sys.RegisterObject("nullext", ".global f\nf:\n  ret\n");
  sys.RunApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  push $0
  call *%edi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push $0
  call *%edi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "nullext"
fnname:
  .asciz "f"
)");
  u64 palladium = sys.PairedDelta(1);
  // L4-style request-reply: 4 privilege crossings (2 kernel entries + 2
  // exits), register-only arguments, shared page tables.
  u64 l4 = 2 * (m.int_gate + m.iret_inter) + 28 /* register marshalling + dispatch */;
  std::printf("3. IPC comparison (request-reply)\n");
  std::printf("   Palladium protected call: %llu cycles, 2 domain crossings (measured)\n",
              static_cast<unsigned long long>(palladium));
  std::printf("   L4-style IPC model:       %llu cycles, 4 domain crossings\n",
              static_cast<unsigned long long>(l4));
  std::printf("   [paper: Palladium 142 vs L4 best case 242 on a P166]\n\n");
  Json().Set("ipc_palladium_cycles", palladium);
  Json().Set("ipc_l4_model_cycles", l4);
  sys.EmitSystemMetrics(&Json());
}

void BenchGateParamCopy() {
  std::printf("4. Call-gate parameter copying (hardware word copy per parameter)\n");
  std::printf("%-12s %14s\n", "params", "lcall+lret cyc");
  for (u8 params : {0, 1, 2, 4}) {
    BareMachine bm;
    std::string diag;
    // 100 lcall/lret round trips from CPL 3 through a gate with `params`
    // stack words copied by the hardware; the terminating #GP (hlt at CPL 3)
    // is a constant amortized across iterations.
    std::string src = R"(
  .global main
  .global target
main:
  push $11
  push $22
  push $33
  push $44
  mov $100, %esi
gate_loop:
  lcall $96            ; gate at GDT index 12
  dec %esi
  cmp $0, %esi
  jne gate_loop
  hlt
target:
  lret $)" + std::to_string(4 * params) + R"(
)";
    auto img = bm.LoadProgram(src, 0x10000, &diag);
    if (!img) {
      std::fprintf(stderr, "%s\n", diag.c_str());
      return;
    }
    bm.gdt().Set(12, SegmentDescriptor::MakeCallGate(BareMachine::CodeSelector(0).raw(),
                                                     *img->Lookup("target"), 3, params));
    bm.Start(*img->Lookup("main"), 3, 0x80000);
    u64 before = bm.cpu().cycles();
    bm.Run(1'000'000);
    std::printf("%-12u %14.1f\n", params,
                static_cast<double>(bm.cpu().cycles() - before) / 100.0);
    Json().Set("gate_params_" + std::to_string(params) + "_cycles",
               static_cast<double>(bm.cpu().cycles() - before) / 100.0);
  }
  std::printf("  (Palladium passes one register argument + a shared data area,\n");
  std::printf("   so its gates copy zero parameters.)\n");
}

}  // namespace
}  // namespace palladium

int main() {
  using namespace palladium;
  std::printf("Ablation benchmarks\n\n");
  BenchSfi();
  BenchTssVariant();
  BenchL4Comparison();
  BenchGateParamCopy();
  std::printf("wrote %s\n", Json().Write().c_str());
  return 0;
}
