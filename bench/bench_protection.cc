// Protection head-to-head: the same packet-filter workload under (a)
// unprotected run-to-completion, (b) Palladium segmentation+paging — both
// the per-frame crossing and the batched entry point — (c) SFI sandboxing,
// and (d) the interpreted BPF baseline; plus the RPC (Table 2) row and a
// live filter upgrade under sustained dataplane traffic. Every mode runs
// the identical 64-packet mixed trace and is cross-checked, packet by
// packet, against the host filter evaluator before any number is reported.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/bpf/bpf.h"
#include "src/filter/filter.h"
#include "src/hw/bare_machine.h"
#include "src/hw/nic.h"
#include "src/kernel/sched.h"
#include "src/net/dataplane.h"
#include "src/net/packet.h"
#include "src/rpc/rpc.h"
#include "src/sfi/sfi.h"

namespace palladium {
namespace {

constexpr char kFilterText[] = "ip.proto == 6 && tcp.dport == 7777";
constexpr u32 kPackets = 64;

struct Workload {
  std::vector<std::vector<u8>> packets;
  std::vector<bool> verdicts;  // host ground truth
};

Workload BuildWorkload(const FilterExpr& expr) {
  Workload w;
  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.dst_port = 7777;
  TraceGenerator gen(7777, match, 0.5);
  for (u32 i = 0; i < kPackets; ++i) {
    bool unused = false;
    w.packets.push_back(BuildPacket(gen.Next(&unused)));
    w.verdicts.push_back(
        EvalFilterHost(expr, w.packets.back().data(),
                       static_cast<u32>(w.packets.back().size())));
  }
  return w;
}

[[noreturn]] void Die(const char* what, const std::string& detail) {
  std::fprintf(stderr, "%s: %s\n", what, detail.c_str());
  std::exit(1);
}

void CheckVerdict(const char* mode, u32 i, bool got, bool want) {
  if (got != want) {
    std::fprintf(stderr, "%s: packet %u verdict %d, host says %d\n", mode, i, got, want);
    std::exit(1);
  }
}

// (a) Unprotected run-to-completion: the very same compiled-filter code the
// Palladium mode runs, called directly at CPL 0 with no protection boundary.
u64 MeasureUnprotected(const FilterExpr& expr, const Workload& w) {
  BareMachine bm;
  std::string diag;
  const std::string src = CompileFilterToAsm(expr) + R"(
  .text
  .global main
main:
  mov $pd_shared, %ebx
  ld 0(%ebx), %eax
  push %eax
  call filter_run
  pop %ecx
  hlt
)";
  auto img = bm.LoadProgram(src, 0x10000, &diag);
  if (!img) Die("unprotected asm", diag);
  const u32 shared = *img->Lookup("pd_shared");
  const u32 entry = *img->Lookup("main");

  auto stage_and_run = [&](u32 i) -> bool {
    const auto& pkt = w.packets[i];
    const u32 len = static_cast<u32>(pkt.size());
    bm.pm().WriteBlock(shared, &len, 4);
    bm.pm().WriteBlock(shared + 4, pkt.data(), len);
    bm.Start(entry, 0, 0x80000);
    StopInfo stop = bm.Run(10'000'000);
    if (stop.reason != StopReason::kHalted) Die("unprotected", "did not halt");
    return bm.cpu().reg(Reg::kEax) == 1;
  };
  stage_and_run(0);  // warm the decode cache
  const u64 before = bm.cpu().cycles();
  for (u32 i = 0; i < kPackets; ++i) {
    CheckVerdict("unprotected", i, stage_and_run(i), w.verdicts[i]);
  }
  return bm.cpu().cycles() - before;
}

// (b) Palladium, one protected crossing per frame.
u64 MeasurePalladium(const FilterExpr& expr, const Workload& w) {
  Machine machine;
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(expr), &aerr);
  if (!obj) Die("palladium asm", aerr.ToString());
  std::string diag;
  auto ext = kext.LoadExtension("flt", *obj, &diag);
  if (!ext) Die("palladium load", diag);
  auto fid = kext.FindFunction("flt:filter_run");
  if (!fid) Die("palladium", "filter_run missing");

  auto stage = [&](u32 i) -> u32 {
    const auto& pkt = w.packets[i];
    const u32 len = static_cast<u32>(pkt.size());
    kext.WriteShared(*ext, 0, &len, 4);
    kext.WriteShared(*ext, 4, pkt.data(), len);
    return len;
  };
  kext.Invoke(*fid, stage(0));  // warm
  u64 total = 0;
  for (u32 i = 0; i < kPackets; ++i) {
    auto r = kext.Invoke(*fid, stage(i));
    if (!r.ok) Die("palladium invoke", r.error);
    CheckVerdict("palladium", i, r.value == 1, w.verdicts[i]);
    total += r.cycles;
  }
  return total;
}

// (b') Palladium batched: one crossing classifies up to kMaxFilterBatch
// frames through the filter_run_batch entry (the dataplane's NAPI path).
u64 MeasurePalladiumBatched(const FilterExpr& expr, const Workload& w) {
  Machine machine;
  Kernel kernel(machine);
  KernelExtensionManager kext(kernel);
  const u32 stride = 4 + ((2048u + 3) & ~3u);
  const u32 capacity = kFilterBatchBase + kMaxFilterBatch * stride;
  AssembleError aerr;
  auto obj = Assemble(CompileFilterToAsm(expr, capacity, stride), &aerr);
  if (!obj) Die("batched asm", aerr.ToString());
  std::string diag;
  auto ext = kext.LoadExtension("fltb", *obj, &diag);
  if (!ext) Die("batched load", diag);
  auto fid = kext.FindFunction("fltb:filter_run_batch");
  if (!fid) Die("batched", "filter_run_batch missing");

  auto run_batch = [&](u32 first, u32 count) -> KernelExtensionManager::InvokeResult {
    kext.WriteShared(*ext, 0, &count, 4);
    for (u32 j = 0; j < count; ++j) {
      const auto& pkt = w.packets[first + j];
      const u32 len = static_cast<u32>(pkt.size());
      const u32 base = kFilterBatchBase + j * stride;
      kext.WriteShared(*ext, base, &len, 4);
      kext.WriteShared(*ext, base + 4, pkt.data(), len);
    }
    return kext.Invoke(*fid, count);
  };
  run_batch(0, kMaxFilterBatch);  // warm
  u64 total = 0;
  for (u32 first = 0; first < kPackets; first += kMaxFilterBatch) {
    const u32 count = std::min(kMaxFilterBatch, kPackets - first);
    auto r = run_batch(first, count);
    if (!r.ok) Die("batched invoke", r.error);
    for (u32 j = 0; j < count; ++j) {
      CheckVerdict("batched", first + j, ((r.value >> j) & 1u) == 1u,
                   w.verdicts[first + j]);
    }
    total += r.cycles;
  }
  return total;
}

// (c) SFI. The compiled-filter codegen uses all six GPRs, which leaves no
// scratch register for the rewriter — so the SFI mode runs a hand-written
// equivalent of the same predicate restricted to eax/ebx/ecx/esi (%edx is
// the rewriter's scratch, %edi stays free). `rewritten` selects the
// sandboxed or the untouched original (the SFI overhead baseline).
constexpr u32 kSfiBase = 0x00400000;
constexpr u32 kSfiBits = 20;
constexpr u32 kSfiLenCell = kSfiBase + 0x5FF00;
constexpr u32 kSfiPkt = kSfiBase + 0x60000;

std::string SfiFilterSource() {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
  .global filter_run
filter_run:
  push %%ebp
  mov %%esp, %%ebp
  ld 8(%%ebp), %%ecx
  cmp $38, %%ecx          ; ethernet + ip + dport must be in-bounds
  jb no
  mov $%u, %%ebx
  ld8 12(%%ebx), %%eax    ; ether.type == 0x0800
  shl $8, %%eax
  ld8 13(%%ebx), %%esi
  add %%esi, %%eax
  cmp $0x0800, %%eax
  jne no
  ld8 23(%%ebx), %%eax    ; ip.proto == 6
  cmp $6, %%eax
  jne no
  ld8 36(%%ebx), %%eax    ; be16 tcp.dport == 7777
  shl $8, %%eax
  ld8 37(%%ebx), %%esi
  add %%esi, %%eax
  cmp $7777, %%eax
  jne no
  mov $1, %%eax
  jmp out
no:
  mov $0, %%eax
out:
  pop %%ebp
  ret
  .global main
main:
  mov $%u, %%ebx
  ld 0(%%ebx), %%eax
  push %%eax
  call filter_run
  pop %%ecx
  hlt
)",
                kSfiPkt, kSfiLenCell);
  return buf;
}

u64 MeasureSfi(const Workload& w, bool rewritten, SfiStats* stats) {
  AssembleError aerr;
  auto obj = Assemble(SfiFilterSource(), &aerr);
  if (!obj) Die("sfi asm", aerr.ToString());
  ObjectFile to_run = *obj;
  if (rewritten) {
    SfiOptions opt;
    opt.sandbox_base = kSfiBase;
    opt.sandbox_bits = kSfiBits;
    std::string diag;
    auto rw = SfiRewrite(*obj, opt, stats, &diag);
    if (!rw) Die("sfi rewrite", diag);
    to_run = *rw;
  }
  BareMachine bm;
  LinkError lerr;
  auto img = LinkImage(to_run, kSfiBase, {}, &lerr);
  if (!img) Die("sfi link", lerr.message);
  if (!bm.LoadImage(*img)) Die("sfi", "image does not fit");
  const u32 entry = *img->Lookup("main");

  auto stage_and_run = [&](u32 i) -> bool {
    const auto& pkt = w.packets[i];
    const u32 len = static_cast<u32>(pkt.size());
    bm.pm().WriteBlock(kSfiLenCell, &len, 4);
    bm.pm().WriteBlock(kSfiPkt, pkt.data(), len);
    bm.Start(entry, 0, kSfiBase + 0x80000);
    StopInfo stop = bm.Run(10'000'000);
    if (stop.reason != StopReason::kHalted) Die("sfi", "did not halt");
    return bm.cpu().reg(Reg::kEax) == 1;
  };
  stage_and_run(0);  // warm
  const u64 before = bm.cpu().cycles();
  for (u32 i = 0; i < kPackets; ++i) {
    CheckVerdict(rewritten ? "sfi" : "sfi-baseline", i, stage_and_run(i), w.verdicts[i]);
  }
  return bm.cpu().cycles() - before;
}

// (d) Interpreted BPF at SPL 0, fed the actual per-frame length. The host
// reference interpreter runs the same program in parallel for the obs
// counters and a second cross-check.
u64 MeasureBpf(const FilterExpr& expr, const Workload& w, BpfHostStats* host_stats) {
  constexpr u32 kProgAddr = 0x40000;
  constexpr u32 kPktAddr = 0x48000;
  constexpr u32 kLenCell = 0x47000;
  BpfProgram prog = CompileFilterToBpf(expr);
  BareMachine bm;
  std::string diag;
  const std::string src = BpfInterpreterAsmSource(kProgAddr, kPktAddr) + R"(
  .global main
main:
  mov $0x47000, %ebx
  ld 0(%ebx), %eax
  push %eax
  call bpf_run
  pop %ecx
  hlt
)";
  auto img = bm.LoadProgram(src, 0x10000, &diag);
  if (!img) Die("bpf asm", diag);
  auto ser = prog.Serialize();
  bm.pm().WriteBlock(kProgAddr, ser.data(), static_cast<u32>(ser.size()));
  const u32 entry = *img->Lookup("main");

  auto stage_and_run = [&](u32 i) -> bool {
    const auto& pkt = w.packets[i];
    const u32 len = static_cast<u32>(pkt.size());
    bm.pm().WriteBlock(kLenCell, &len, 4);
    bm.pm().WriteBlock(kPktAddr, pkt.data(), len);
    bm.Start(entry, 0, 0x80000);
    StopInfo stop = bm.Run(10'000'000);
    if (stop.reason != StopReason::kHalted) Die("bpf", "did not halt");
    return bm.cpu().reg(Reg::kEax) == 1;
  };
  stage_and_run(0);  // warm
  const u64 before = bm.cpu().cycles();
  for (u32 i = 0; i < kPackets; ++i) {
    const bool got = stage_and_run(i);
    CheckVerdict("bpf", i, got, w.verdicts[i]);
    const u32 host = BpfInterpretHost(prog, w.packets[i].data(),
                                      static_cast<u32>(w.packets[i].size()), host_stats);
    CheckVerdict("bpf-host", i, host == 1, w.verdicts[i]);
  }
  return bm.cpu().cycles() - before;
}

// Scenario 2: a live filter upgrade under sustained traffic. The echo
// worker requests the upgrade (syscall 235) after its 3rd served frame; the
// control plane loads v2, atomically switches the flow, and unloads v1 —
// and also swaps a dynamically linked helper library in the worker's
// address space, exercising src/dl under the same traffic.
struct UpgradeOutcome {
  PacketDataplane::Stats stats;
  u64 cycles = 0;
  u64 dl_loads = 0, dl_unloads = 0;
  i32 served = 0;
  bool ok = false;
};

constexpr char kUpgradeWorkerSource[] = R"(
  .global main
main:
  mov $90, %eax           ; SYS_MMAP
  mov $0, %ebx
  mov $4096, %ecx
  mov $3, %edx
  int $0x80
  mov %eax, %esi
  mov $0, %edi
loop:
  mov $220, %eax          ; SYS_PKT_RECV
  mov %esi, %ebx
  mov $2048, %ecx
  mov $0, %edx
  int $0x80
  cmp $0, %eax
  jl done
  mov %eax, %ecx
  mov $221, %eax          ; SYS_PKT_SEND
  mov %esi, %ebx
  int $0x80
  inc %edi
  cmp $3, %edi
  jne loop
  mov $235, %eax          ; request the live upgrade
  int $0x80
  jmp loop
done:
  mov $1, %eax            ; SYS_EXIT
  mov %edi, %ebx
  int $0x80
)";

UpgradeOutcome RunUpgradeScenario(obs::MetricsRegistry* registry) {
  UpgradeOutcome out;
  Machine machine;
  Kernel kernel(machine);
  Scheduler sched(kernel);
  KernelExtensionManager kext(kernel);
  DynamicLinker dl(kernel);
  Nic nic(machine.pm(), kernel.pic(), kIrqNic);
  PacketDataplane dp(kernel, kext, nic);
  bool shutdown_issued = false;
  sched.set_idle_hook([&]() {
    if (shutdown_issued) return false;
    shutdown_issued = true;
    dp.Shutdown();
    return true;
  });
  std::string diag;
  auto img = AssembleAndLink(kUpgradeWorkerSource, kUserTextBase, {}, &diag);
  if (!img) Die("upgrade worker asm", diag);
  Pid w = kernel.CreateProcess();
  if (w == 0 || !kernel.LoadUserImage(w, *img, "main", &diag)) Die("upgrade worker", diag);
  sched.AddProcess(w);

  AssembleError aerr;
  auto helper = Assemble(".global helper\nhelper:\n  ret\n", &aerr);
  if (!helper) Die("helper asm", aerr.ToString());
  dl.RegisterObject("libhelper_v1", *helper);
  dl.RegisterObject("libhelper_v2", *helper);
  if (!dl.LoadLibrary(w, "libhelper_v1", false, &diag)) Die("dl load v1", diag);

  bool upgrade_ok = true;
  kernel.RegisterSyscall(235, [&](Kernel& k, u32, u32, u32) {
    std::string d2;
    if (!dp.UpgradeFlow("f7777", kFilterText, &d2)) {
      std::fprintf(stderr, "upgrade: %s\n", d2.c_str());
      upgrade_ok = false;
    }
    if (!dl.UnloadLibrary(w, "libhelper_v1", &d2) ||
        !dl.LoadLibrary(w, "libhelper_v2", false, &d2)) {
      std::fprintf(stderr, "dl swap: %s\n", d2.c_str());
      upgrade_ok = false;
    }
    k.ReturnFromGate(0);
  });
  if (!dp.AddFlow("f7777", kFilterText, {w}, &diag)) Die("add flow", diag);

  PacketSpec match;
  match.proto = kIpProtoTcp;
  match.dst_port = 7777;
  TraceGenerator gen(20260808, match, 0.6);
  u64 at = 5'000;
  for (u32 i = 0; i < 200; ++i) {
    bool unused = false;
    auto frame = BuildPacket(gen.Next(&unused));
    nic.Inject(frame.data(), static_cast<u32>(frame.size()), at);
    at += 2'500;
  }
  auto result = sched.RunAll(4'000'000'000ull);
  nic.FlushTx();
  out.stats = dp.stats();
  out.cycles = kernel.cpu().cycles();
  out.dl_loads = dl.loads();
  out.dl_unloads = dl.unloads();
  out.served = kernel.process(w)->exit_code;
  out.ok = upgrade_ok && result.exited == 1 && out.stats.flow_upgrades == 1;

  if (registry != nullptr) {
    registry->CollectMachine(kernel, &sched);
    registry->CollectNic(nic);
    registry->CollectDataplane(dp);
    registry->CollectKext(kext);
    registry->CollectDl(dl);
  }
  return out;
}

}  // namespace
}  // namespace palladium

int main() {
  using namespace palladium;

  std::string err;
  auto expr = ParseFilter(kFilterText, &err);
  if (!expr) Die("parse", err);
  Workload w = BuildWorkload(*expr);

  obs::MetricsRegistry registry;
  BenchJson json("protection");

  // --- Scenario 1: the four protection modes, identical workload ------------
  const u64 unprot = MeasureUnprotected(*expr, w);

  const u64 pd = MeasurePalladium(*expr, w);
  const u64 pd_batched = MeasurePalladiumBatched(*expr, w);

  SfiStats sfi_stats;
  const u64 sfi_base = MeasureSfi(w, /*rewritten=*/false, nullptr);
  const u64 sfi = MeasureSfi(w, /*rewritten=*/true, &sfi_stats);

  BpfHostStats bpf_host;
  const u64 bpf = MeasureBpf(*expr, w, &bpf_host);

  registry.CollectSfi(sfi_stats);
  registry.CollectBpf(bpf_host);

  auto per_inv = [](u64 total) { return static_cast<double>(total) / kPackets; };
  auto pps = [](u64 total) {
    return total == 0 ? 0.0 : kPackets * kCpuMhz * 1e6 / static_cast<double>(total);
  };

  std::printf("Protection head-to-head: %u-packet mixed trace, filter \"%s\"\n\n",
              kPackets, kFilterText);
  std::printf("%-22s %16s %14s %10s\n", "Mode", "cycles/invoc", "pps", "vs unprot");
  struct Row {
    const char* name;
    const char* key;
    u64 total;
  } rows[] = {
      {"unprotected", "unprotected", unprot},
      {"palladium", "palladium", pd},
      {"palladium-batched", "palladium_batched", pd_batched},
      {"sfi", "sfi", sfi},
      {"bpf-interpreter", "bpf", bpf},
  };
  for (const Row& r : rows) {
    std::printf("%-22s %16.1f %14.0f %9.2fx\n", r.name, per_inv(r.total), pps(r.total),
                per_inv(r.total) / per_inv(unprot));
    json.Set(std::string(r.key) + "_cycles_per_invocation", per_inv(r.total));
    json.Set(std::string(r.key) + "_pps", pps(r.total));
  }
  json.Set("workload_packets", kPackets);
  json.Set("sfi_baseline_cycles_per_invocation", per_inv(sfi_base));
  json.Set("sfi_expansion", sfi_stats.Expansion());
  std::printf("\nSFI code expansion: %.2fx (%llu -> %llu insns); SFI overhead vs its own\n"
              "unprotected baseline: %.2fx\n",
              sfi_stats.Expansion(), static_cast<unsigned long long>(sfi_stats.original_insns),
              static_cast<unsigned long long>(sfi_stats.rewritten_insns),
              per_inv(sfi) / per_inv(sfi_base));

  // --- RPC row (Table 2 baseline) -------------------------------------------
  LocalRpcChannel rpc;
  rpc.Bind("classify", [](const std::vector<u8>& req) { return req; });
  u64 rpc_before = rpc.cycles();
  rpc.Call("classify", std::vector<u8>(32, 0x5A));
  const double rpc_us_32 = CyclesToUs(static_cast<double>(rpc.cycles() - rpc_before));
  rpc_before = rpc.cycles();
  rpc.Call("classify", std::vector<u8>(256, 0x5A));
  const double rpc_us_256 = CyclesToUs(static_cast<double>(rpc.cycles() - rpc_before));
  registry.CollectRpc(rpc);
  json.Set("rpc_us_per_call_32b", rpc_us_32);
  json.Set("rpc_us_per_call_256b", rpc_us_256);
  std::printf("\nRPC extension call (socket baseline): %.2f us @ 32 B, %.2f us @ 256 B\n",
              rpc_us_32, rpc_us_256);

  // --- Scenario 2: live upgrade under traffic -------------------------------
  UpgradeOutcome up = RunUpgradeScenario(&registry);
  if (!up.ok) Die("upgrade scenario", "did not complete cleanly");
  const u64 upgrade_drops = up.stats.dropped_queue_full + up.stats.dropped_dead_dest +
                            up.stats.dropped_backlog_full;
  json.Set("upgrade_rx_frames", up.stats.rx_frames);
  json.Set("upgrade_served", static_cast<u64>(up.served));
  json.Set("upgrade_dropped_frames", upgrade_drops);
  json.Set("upgrade_flow_upgrades", up.stats.flow_upgrades);
  json.Set("upgrade_dl_loads", up.dl_loads);
  json.Set("upgrade_dl_unloads", up.dl_unloads);
  const double up_pps =
      up.cycles == 0 ? 0.0
                     : static_cast<double>(up.stats.delivered) * kCpuMhz * 1e6 /
                           static_cast<double>(up.cycles);
  json.Set("upgrade_delivered_pps", up_pps);
  std::printf("\nLive upgrade under traffic: %llu frames in, %d served, %llu dropped by\n"
              "the upgrade (flow upgrades: %llu, dl loads/unloads: %llu/%llu)\n",
              static_cast<unsigned long long>(up.stats.rx_frames), up.served,
              static_cast<unsigned long long>(upgrade_drops),
              static_cast<unsigned long long>(up.stats.flow_upgrades),
              static_cast<unsigned long long>(up.dl_loads),
              static_cast<unsigned long long>(up.dl_unloads));
  if (upgrade_drops != 0) Die("upgrade scenario", "frames were dropped");

  EmitMetrics(registry, &json);
  std::printf("\nPaper reference: Palladium's segment+paging crossing costs far less\n");
  std::printf("than interpretation (BPF) and avoids SFI's per-access expansion; the\n");
  std::printf("batched entry amortizes the crossing to near-unprotected cost.\n");
  std::printf("wrote %s\n", json.Write().c_str());
  return 0;
}
