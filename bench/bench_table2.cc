// Table 2: string-reverse latency — unprotected call vs Palladium protected
// call vs local socket RPC, for payloads of 32..256 bytes. The two call
// variants execute the same extension code on the simulated machine; the
// RPC baseline performs real marshalling with calibrated socket-path costs
// plus the measured in-simulator compute time.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/rpc/rpc.h"

namespace palladium {
namespace {

// The reverse extension: arg -> [u32 length][bytes] in a shared buffer.
constexpr const char* kReverseExt = R"(
  .global reverse
reverse:
  push %ebp
  mov %esp, %ebp
  push %ebx            ; callee-saved registers
  push %esi
  push %edi
  ld 8(%ebp), %ebx     ; buffer: [len][bytes...]
  ld 0(%ebx), %ecx     ; len
  lea 4(%ebx), %esi    ; first byte
  lea 3(%ebx,%ecx,1), %edi  ; last byte (4 + len - 1)
rev_loop:
  cmp %edi, %esi
  jae rev_done
  ld8 0(%esi), %eax
  ld8 0(%edi), %edx
  st8 %edx, 0(%esi)
  st8 %eax, 0(%edi)
  inc %esi
  dec %edi
  jmp rev_loop
rev_done:
  pop %edi
  pop %esi
  pop %ebx
  pop %ebp
  ret
)";

// Measures both call variants for one string size; returns {unprot, prot}.
struct CallCosts {
  u64 unprotected;
  u64 palladium;
};

// When `json` is non-null the run's subsystem counters are federated into it
// (the fixture is per-call, so the caller picks which size's run to snapshot).
CallCosts MeasureCalls(u32 size, BenchJson* json = nullptr) {
  BenchSystem sys;
  sys.RegisterObject("revext", kReverseExt);
  sys.RunApp(R"(
  .equ SIZE, )" + std::to_string(size) +
             R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  ; a shared page for the string buffer
  mov $SYS_MMAP, %eax
  mov $0, %ebx
  mov $0x1000, %ecx
  mov $3, %edx
  int $INT_SYSCALL
  mov %eax, %ebp          ; buffer base (kept in %ebp throughout)
  sti $SIZE, 0(%ebp)      ; length word (also materializes the page)
  mov $SYS_SET_RANGE, %eax
  mov %ebp, %ebx
  mov $0x1000, %ecx
  mov $1, %edx
  int $INT_SYSCALL
  ; fill the string with a pattern
  mov $0, %ecx
fill:
  cmp $SIZE, %ecx
  jae fill_done
  mov %ecx, %eax
  and $0xFF, %eax
  lea 4(%ebp), %ebx
  st8 %eax, 0(%ebx,%ecx,1)
  inc %ecx
  jmp fill
fill_done:
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi          ; protected entry
  mov $SYS_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %esi          ; raw entry

  ; warm both paths (cache/TLB warmed, as in the paper)
  push %ebp
  call *%esi
  pop %ecx
  push %ebp
  call *%edi
  pop %ecx

  ; pair 0: baseline
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  ; pair 1: unprotected
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push %ebp
  call *%esi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  ; pair 2: protected
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push %ebp
  call *%edi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "revext"
fnname:
  .asciz "reverse"
)");
  if (json != nullptr) sys.EmitSystemMetrics(json);
  return CallCosts{sys.PairedDelta(1), sys.PairedDelta(2)};
}

}  // namespace
}  // namespace palladium

int main() {
  using namespace palladium;

  std::printf("Table 2: string reverse latency (microseconds, Pentium-200 model)\n");
  std::printf("%-16s %14s %14s %12s\n", "Size of string", "Unprotected", "Palladium",
              "Linux RPC");
  std::printf("%-16s %14s %14s %12s\n", "(Bytes)", "call", "call", "");

  BenchJson json("table2");
  for (u32 size : {32u, 64u, 128u, 256u}) {
    CallCosts costs = MeasureCalls(size, size == 256u ? &json : nullptr);

    // RPC: marshalling + socket path + the same compute (measured above).
    LocalRpcChannel channel;
    channel.Bind("reverse", [](const std::vector<u8>& req) {
      return std::vector<u8>(req.rbegin(), req.rend());
    });
    std::vector<u8> payload(size, 'x');
    auto reply = channel.Call("reverse", payload);
    if (!reply) return 1;
    const u64 rpc_cycles = channel.cycles() + costs.unprotected;

    std::printf("%-16u %14.2f %14.2f %12.2f\n", size, CyclesToUs(costs.unprotected),
                CyclesToUs(costs.palladium), CyclesToUs(rpc_cycles));
    const std::string prefix = "size_" + std::to_string(size) + "_";
    json.Set(prefix + "unprotected_us", CyclesToUs(costs.unprotected));
    json.Set(prefix + "palladium_us", CyclesToUs(costs.palladium));
    json.Set(prefix + "rpc_us", CyclesToUs(rpc_cycles));
  }
  std::printf("\nPaper reference (us): 32B: 2.20 / 2.79 / 349.19;  256B: 15.22 / 15.97 /\n");
  std::printf("423.33. The protected-vs-unprotected gap stays ~constant (~118-150\n");
  std::printf("cycles) while RPC is two orders of magnitude slower at small sizes.\n");
  std::printf("wrote %s\n", json.Write().c_str());
  return 0;
}
