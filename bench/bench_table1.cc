// Table 1: invocation cost of a null extension function — unprotected
// (Intra) vs Palladium protected (Inter) vs the Pentium manual's theoretical
// sequence cost (Hardware). The Inter/Intra totals are *measured* on the
// simulated machine end-to-end; the per-phase rows are attributed from the
// cycle model and cross-checked against the measurement.
#include <cstdio>

#include "bench/bench_util.h"

namespace palladium {
namespace {

struct Breakdown {
  u32 setup, call, ret, restore;
  u32 Total() const { return setup + call + ret + restore; }
};

// The Figure-6 instruction sequences, priced by a cycle model.
Breakdown InterBreakdown(const CycleModel& m) {
  Breakdown b;
  // Caller's argument push + Prepare up to (not including) the lret:
  // push $arg ; ld 4(%esp) ; st arg ; st SP2 ; st BP2 ; push x4.
  b.setup = m.push_imm + m.load + 3 * m.store + 4 * m.push_imm;
  // lret into the extension segment + Transfer's local call.
  b.call = m.lret_inter + m.call_near;
  // Extension's ret back to Transfer + lcall through the AppCallGate.
  b.ret = m.ret_near + m.lcall_inter;
  // AppCallGate: two absolute loads + local ret.
  b.restore = 2 * m.load + m.ret_near;
  return b;
}

Breakdown IntraBreakdown(const CycleModel& m) {
  Breakdown b;
  // push %ebp ; mov %esp,%ebp  (the null function's prologue)
  b.setup = m.push_reg + m.mov;
  b.call = m.call_near;
  b.ret = m.ret_near;
  b.restore = m.pop_reg;  // pop %ebp
  return b;
}

}  // namespace
}  // namespace palladium

int main() {
  using namespace palladium;

  BenchSystem sys;
  sys.RegisterObject("nullext", R"(
  .global null_fn
null_fn:
  push %ebp
  mov %esp, %ebp
  pop %ebp
  ret
)");

  // The app measures three checkpoint pairs: empty (baseline), an
  // unprotected direct call into the extension segment (legal at SPL 2),
  // and the protected Prepare/Transfer/AppCallGate path. Each measured
  // region runs twice beforehand to warm the TLB (the paper's methodology).
  sys.RunApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi          ; protected entry (Prepare)
  mov $SYS_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %esi          ; raw entry (direct call target)

  ; warm up both paths
  push $0
  call *%esi
  pop %ecx
  push $0
  call *%edi
  pop %ecx

  ; pair 0: empty baseline
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL

  ; pair 1: unprotected (intra) call
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push $0
  call *%esi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL

  ; pair 2: protected (inter) call
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push $0
  call *%edi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL

  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "nullext"
fnname:
  .asciz "null_fn"
)");

  const u64 intra_measured = sys.PairedDelta(1);
  const u64 inter_measured = sys.PairedDelta(2);

  const CycleModel measured_model = CycleModel::Measured();
  const CycleModel theory_model = CycleModel::TheoryPentium();
  const Breakdown inter = InterBreakdown(measured_model);
  const Breakdown intra = IntraBreakdown(measured_model);
  const Breakdown hw = InterBreakdown(theory_model);

  std::printf("Table 1: protected procedure call cost (cycles, Pentium-200 model)\n");
  std::printf("%-22s %8s %8s %10s\n", "Component", "Inter", "Intra", "Hardware");
  std::printf("%-22s %8u %8u %10u\n", "Setting up stack", inter.setup, intra.setup, hw.setup);
  std::printf("%-22s %8u %8u %10u\n", "Calling function", inter.call, intra.call, hw.call);
  std::printf("%-22s %8u %8u %10u\n", "Returning to caller", inter.ret, intra.ret, hw.ret);
  std::printf("%-22s %8u %8u %10u\n", "Restoring state", inter.restore, intra.restore,
              hw.restore);
  std::printf("%-22s %8u %8u %10u\n", "Total Cost", inter.Total(), intra.Total(), hw.Total());
  std::printf("\nEnd-to-end measured on the simulated machine (includes the null\n");
  std::printf("function body and caller argument handling):\n");
  std::printf("  protected call:   %llu cycles (%.2f us)\n",
              static_cast<unsigned long long>(inter_measured), CyclesToUs(inter_measured));
  std::printf("  unprotected call: %llu cycles (%.2f us)\n",
              static_cast<unsigned long long>(intra_measured), CyclesToUs(intra_measured));
  std::printf("  protection overhead: %lld cycles  (paper: 142 total, 132 net)\n",
              static_cast<long long>(inter_measured - intra_measured));
  std::printf("\nPaper reference: Inter 142 / Intra 10 / Hardware 89 (rows sum to 76;\n");
  std::printf("the discrepancy is in the original paper).\n");

  BenchJson json("table1");
  json.Set("inter_total_cycles", static_cast<u64>(inter.Total()));
  json.Set("intra_total_cycles", static_cast<u64>(intra.Total()));
  json.Set("hardware_total_cycles", static_cast<u64>(hw.Total()));
  json.Set("protected_call_measured_cycles", inter_measured);
  json.Set("unprotected_call_measured_cycles", intra_measured);
  json.Set("protection_overhead_cycles", inter_measured - intra_measured);
  sys.EmitSystemMetrics(&json);
  std::printf("wrote %s\n", json.Write().c_str());
  return 0;
}
