// Table 3: Web-server CGI throughput under five execution models. The
// LibCGI invocation costs (protected and unprotected) are measured live from
// the simulated machine and fed into the discrete-event server model; the
// remaining costs are calibrated to the paper's testbed (Apache on a
// Pentium 200, 100 Mbps Ethernet, 1000 requests, concurrency 30).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/web/server_sim.h"

namespace palladium {
namespace {

// Measures the two LibCGI invocation variants on the simulator (same
// machinery as bench_table1, with a request-buffer-sized shared area).
struct MeasuredCalls {
  u64 unprotected;
  u64 protected_call;
};

// Snapshots the measurement run's subsystem counters into `json` (the
// BenchSystem is scoped to this call, so the caller cannot do it later).
MeasuredCalls MeasureLibCgiCalls(BenchJson* json) {
  BenchSystem sys;
  sys.RegisterObject("cgiext", R"(
  .global render
render:
  push %ebp
  mov %esp, %ebp
  ld 8(%ebp), %eax   ; request-buffer pointer (unused by the null script)
  pop %ebp
  ret
)");
  sys.RunApp(R"(
  .global main
main:
  mov $SYS_INIT_PL, %eax
  int $INT_SYSCALL
  mov $SYS_SEG_DLOPEN, %eax
  mov $extname, %ebx
  int $INT_SYSCALL
  mov %eax, %esi
  mov $SYS_SEG_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %edi
  mov $SYS_DLSYM, %eax
  mov %esi, %ebx
  mov $fnname, %ecx
  int $INT_SYSCALL
  mov %eax, %esi
  push $0
  call *%esi
  pop %ecx
  push $0
  call *%edi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push $0
  call *%esi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  push $0
  call *%edi
  pop %ecx
  mov $SYS_BENCH_MARK, %eax
  int $INT_SYSCALL
  mov $SYS_EXIT, %eax
  mov $0, %ebx
  int $INT_SYSCALL
  .data
extname:
  .asciz "cgiext"
fnname:
  .asciz "render"
)");
  if (json != nullptr) sys.EmitSystemMetrics(json);
  return MeasuredCalls{sys.PairedDelta(1), sys.PairedDelta(2)};
}

}  // namespace
}  // namespace palladium

int main() {
  using namespace palladium;

  BenchJson json("table3");
  MeasuredCalls calls = MeasureLibCgiCalls(&json);
  WebServerCosts costs;
  costs.libcgi_call_cycles = calls.unprotected;
  costs.libcgi_protected_call_cycles = calls.protected_call;

  std::printf("Table 3: CGI throughput (requests/sec); 1000 requests, concurrency 30,\n");
  std::printf("100 Mbps link. LibCGI call costs measured from the simulator:\n");
  std::printf("  unprotected %llu cycles, protected %llu cycles per invocation.\n\n",
              static_cast<unsigned long long>(calls.unprotected),
              static_cast<unsigned long long>(calls.protected_call));

  const u32 sizes[] = {28, 1024, 10 * 1024, 100 * 1024};
  const char* size_names[] = {"28 Bytes", "1 KBytes", "10 KBytes", "100 KBytes"};
  const CgiModel models[] = {CgiModel::kCgi, CgiModel::kFastCgi, CgiModel::kLibCgiProtected,
                             CgiModel::kLibCgi, CgiModel::kStatic};

  std::printf("%-12s %8s %9s %12s %14s %8s\n", "Size", "CGI", "FastCGI", "LibCGI(Prot)",
              "LibCGI(Unprot)", "Server");
  json.Set("libcgi_unprotected_call_cycles", calls.unprotected);
  json.Set("libcgi_protected_call_cycles", calls.protected_call);
  for (int s = 0; s < 4; ++s) {
    WebWorkload wl;
    wl.file_bytes = sizes[s];
    std::printf("%-12s", size_names[s]);
    for (CgiModel model : models) {
      WebRunResult r = SimulateWebServer(model, wl, costs);
      std::printf(" %*.0f", model == CgiModel::kCgi ? 8 :
                  model == CgiModel::kFastCgi ? 9 :
                  model == CgiModel::kLibCgiProtected ? 12 :
                  model == CgiModel::kLibCgi ? 14 : 8,
                  r.requests_per_sec);
      json.Set("bytes_" + std::to_string(sizes[s]) + "_" + CgiModelName(model) + "_rps",
               r.requests_per_sec);
    }
    std::printf("\n");
  }
  std::printf("\nPaper reference (28B row): 98 / 193 / 437 / 448 / 460. Expected shape:\n");
  std::printf("LibCGI within ~5%% of the static bound, protected within ~4%% of\n");
  std::printf("unprotected, FastCGI ~2x slower below 10 KB, CGI slowest; all models\n");
  std::printf("converge at 100 KB where per-byte costs dominate.\n");
  std::printf("wrote %s\n", json.Write().c_str());
  return 0;
}
